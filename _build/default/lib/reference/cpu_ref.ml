module Dt = Gpu_tensor.Dtype

let gemm ~m ~n ~k ?(beta = 0.0) a b c =
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for kk = 0 to k - 1 do
        acc := !acc +. (a.((i * k) + kk) *. b.((kk * n) + j))
      done;
      c.((i * n) + j) <- (beta *. c.((i * n) + j)) +. !acc
    done
  done

let gemm_fp16_inputs ~m ~n ~k ?(beta = 0.0) a b c =
  let r = Dt.round Dt.FP16 in
  let a' = Array.map r a and b' = Array.map r b in
  gemm ~m ~n ~k ~beta a' b' c

let bias_add ~rows ~cols x bias =
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      x.((i * cols) + j) <- x.((i * cols) + j) +. bias.(j)
    done
  done

let map_inplace f x =
  for i = 0 to Array.length x - 1 do
    x.(i) <- f x.(i)
  done

let relu = map_inplace (Float.max 0.0)

let gelu =
  map_inplace (fun x ->
      0.5 *. x
      *. (1.0
         +. Float.tanh (0.7978845608028654 *. (x +. (0.044715 *. x *. x *. x)))))

let tanh_ = map_inplace Float.tanh
let sigmoid = map_inplace (fun x -> 1.0 /. (1.0 +. Float.exp (-.x)))

let add_into ~dst src =
  for i = 0 to Array.length dst - 1 do
    dst.(i) <- dst.(i) +. src.(i)
  done

let softmax_rows ~rows ~cols x =
  for i = 0 to rows - 1 do
    let base = i * cols in
    let m = ref Float.neg_infinity in
    for j = 0 to cols - 1 do
      m := Float.max !m x.(base + j)
    done;
    let sum = ref 0.0 in
    for j = 0 to cols - 1 do
      let e = Float.exp (x.(base + j) -. !m) in
      x.(base + j) <- e;
      sum := !sum +. e
    done;
    for j = 0 to cols - 1 do
      x.(base + j) <- x.(base + j) /. !sum
    done
  done

let layernorm ~rows ~cols ?(eps = 1e-5) ~gamma ~beta x =
  for i = 0 to rows - 1 do
    let base = i * cols in
    let mean = ref 0.0 in
    for j = 0 to cols - 1 do
      mean := !mean +. x.(base + j)
    done;
    let mean = !mean /. float_of_int cols in
    let var = ref 0.0 in
    for j = 0 to cols - 1 do
      let d = x.(base + j) -. mean in
      var := !var +. (d *. d)
    done;
    let var = !var /. float_of_int cols in
    let inv = 1.0 /. Float.sqrt (var +. eps) in
    for j = 0 to cols - 1 do
      x.(base + j) <- ((x.(base + j) -. mean) *. inv *. gamma.(j)) +. beta.(j)
    done
  done

let attention ~seq ~dh q k v out =
  let scores = Array.make (seq * seq) 0.0 in
  let scale = 1.0 /. Float.sqrt (float_of_int dh) in
  for i = 0 to seq - 1 do
    for j = 0 to seq - 1 do
      let acc = ref 0.0 in
      for d = 0 to dh - 1 do
        acc := !acc +. (q.((i * dh) + d) *. k.((j * dh) + d))
      done;
      scores.((i * seq) + j) <- !acc *. scale
    done
  done;
  softmax_rows ~rows:seq ~cols:seq scores;
  gemm ~m:seq ~n:dh ~k:seq scores v out

let attention_causal ~seq ~dh q k v out =
  let scores = Array.make (seq * seq) 0.0 in
  let scale = 1.0 /. Float.sqrt (float_of_int dh) in
  for i = 0 to seq - 1 do
    for j = 0 to seq - 1 do
      if j > i then scores.((i * seq) + j) <- Float.neg_infinity
      else begin
        let acc = ref 0.0 in
        for d = 0 to dh - 1 do
          acc := !acc +. (q.((i * dh) + d) *. k.((j * dh) + d))
        done;
        scores.((i * seq) + j) <- !acc *. scale
      end
    done
  done;
  softmax_rows ~rows:seq ~cols:seq scores;
  gemm ~m:seq ~n:dh ~k:seq scores v out

let max_abs_diff a b =
  let d = ref 0.0 in
  Array.iteri (fun i x -> d := Float.max !d (Float.abs (x -. b.(i)))) a;
  !d

let allclose ?(rtol = 2e-2) ?(atol = 1e-2) a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri
    (fun i x ->
      let y = b.(i) in
      if Float.abs (x -. y) > atol +. (rtol *. Float.max (Float.abs x) (Float.abs y))
      then ok := false)
    a;
  !ok

let random_fp16 ~seed n =
  let st = Random.State.make [| seed |] in
  Array.init n (fun _ -> Dt.round Dt.FP16 ((Random.State.float st 2.0) -. 1.0))

let random_fp32 ~seed n =
  let st = Random.State.make [| seed |] in
  Array.init n (fun _ ->
      Dt.round Dt.FP32 ((Random.State.float st 2.0) -. 1.0))
