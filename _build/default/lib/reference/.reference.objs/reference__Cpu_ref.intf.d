lib/reference/cpu_ref.mli:
