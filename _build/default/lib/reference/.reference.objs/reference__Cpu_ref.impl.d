lib/reference/cpu_ref.ml: Array Float Gpu_tensor Random
