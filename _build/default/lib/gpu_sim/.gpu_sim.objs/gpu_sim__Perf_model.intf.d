lib/gpu_sim/perf_model.mli: Format Graphene Machine Static_analysis
