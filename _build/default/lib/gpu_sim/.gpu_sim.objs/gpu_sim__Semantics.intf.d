lib/gpu_sim/semantics.mli: Graphene Memory
