lib/gpu_sim/counters.ml: Array Format Hashtbl List Option
