lib/gpu_sim/program.mli: Counters Graphene Machine Perf_model
