lib/gpu_sim/static_analysis.ml: Float Format Gpu_tensor Graphene List Printf Shape String
