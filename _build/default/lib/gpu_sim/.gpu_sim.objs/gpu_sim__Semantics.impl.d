lib/gpu_sim/semantics.ml: Array Gpu_tensor Graphene List Memory Printf Shape String
