lib/gpu_sim/memory.mli: Gpu_tensor
