lib/gpu_sim/interp.ml: Array Counters Format Fun Gpu_tensor Graphene Hashtbl List Memory Option Semantics Shape Stdlib String
