lib/gpu_sim/memory.ml: Array Format Gpu_tensor Hashtbl
