lib/gpu_sim/perf_model.ml: Float Format List Machine Static_analysis
