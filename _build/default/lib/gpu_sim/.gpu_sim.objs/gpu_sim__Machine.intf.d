lib/gpu_sim/machine.mli: Graphene
