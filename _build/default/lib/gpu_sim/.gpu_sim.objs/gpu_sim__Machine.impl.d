lib/gpu_sim/machine.ml: Graphene
