lib/gpu_sim/interp.mli: Counters Graphene
