lib/gpu_sim/static_analysis.mli: Format Graphene
