lib/gpu_sim/counters.mli: Format Hashtbl
