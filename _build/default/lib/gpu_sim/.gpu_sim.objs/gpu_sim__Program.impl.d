lib/gpu_sim/program.ml: Array Counters Gpu_tensor Graphene Interp List Option Perf_model
