type t =
  { arch : Graphene.Arch.t
  ; name : string
  ; sm_count : int
  ; clock_ghz : float
  ; tc_flops_per_sm_cycle : int
  ; fma_flops_per_sm_cycle : int
  ; dram_bytes_per_sec : float
  ; smem_bytes_per_sm_cycle : int
  ; smem_bytes_per_block : int
  ; max_threads_per_sm : int
  ; registers_per_sm : int
  ; kernel_launch_overhead_s : float
  ; l2_amplification : float
  ; tc_efficiency : float
  ; mem_efficiency : float
  }

let v100 =
  { arch = Graphene.Arch.SM70
  ; name = "Tesla V100 (SM70)"
  ; sm_count = 80
  ; clock_ghz = 1.312
  ; (* 8 first-gen tensor cores per SM, 64 FMA each: 1024 flops/cycle *)
    tc_flops_per_sm_cycle = 1024
  ; (* 64 fp32 cores per SM, FMA = 2 flops *)
    fma_flops_per_sm_cycle = 128
  ; dram_bytes_per_sec = 900.0e9
  ; smem_bytes_per_sm_cycle = 128
  ; smem_bytes_per_block = 96 * 1024
  ; max_threads_per_sm = 2048
  ; registers_per_sm = 65536
  ; kernel_launch_overhead_s = 4.5e-6
  ; l2_amplification = 5.0
  ; tc_efficiency = 0.93
  ; mem_efficiency = 0.82
  }

let a6000 =
  { arch = Graphene.Arch.SM86
  ; name = "RTX A6000 (SM86)"
  ; sm_count = 84
  ; clock_ghz = 1.41
  ; (* 4 third-gen tensor cores per SM, 128 fp16 FMA each: 1024 flops/cycle *)
    tc_flops_per_sm_cycle = 1024
  ; (* 128 fp32 cores per SM *)
    fma_flops_per_sm_cycle = 256
  ; dram_bytes_per_sec = 768.0e9
  ; smem_bytes_per_sm_cycle = 128
  ; smem_bytes_per_block = 100 * 1024
  ; max_threads_per_sm = 1536
  ; registers_per_sm = 65536
  ; kernel_launch_overhead_s = 4.0e-6
  ; l2_amplification = 7.0
  ; tc_efficiency = 0.95
  ; mem_efficiency = 0.85
  }

let of_arch = function
  | Graphene.Arch.SM70 -> v100
  | Graphene.Arch.SM86 -> a6000

let tc_peak_flops m =
  float_of_int (m.sm_count * m.tc_flops_per_sm_cycle) *. m.clock_ghz *. 1.0e9

let fma_peak_flops m =
  float_of_int (m.sm_count * m.fma_flops_per_sm_cycle) *. m.clock_ghz *. 1.0e9

let smem_peak_bytes m =
  float_of_int (m.sm_count * m.smem_bytes_per_sm_cycle) *. m.clock_ghz *. 1.0e9
