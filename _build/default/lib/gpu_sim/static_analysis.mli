(** Static resource analysis of Graphene kernels.

    Walks a kernel's IR symbolically: loop trip counts multiply the costs of
    the atomic specs they enclose, thread-dependent guards contribute the
    exact fraction of participating threads, and each atomic spec's
    per-instance cost comes from the registry ({!Graphene.Atomic.cost}).
    This derives flop and traffic totals for problem sizes far beyond what
    the interpreter can execute — the substitute for profiling real runs
    (see DESIGN.md). *)

type totals =
  { tc_flops : float  (** tensor-core flops *)
  ; fma_flops : float  (** CUDA-core flops *)
  ; global_bytes : float
  ; shared_bytes : float
  ; instructions : float
  ; blocks : int  (** grid size *)
  ; threads_per_block : int
  ; smem_bytes_per_block : int  (** static shared allocation *)
  ; param_bytes : float
        (** unique bytes of the kernel's global parameters — the compulsory
            DRAM traffic, used as the L2-filtered traffic floor *)
  ; regs_per_thread : int
        (** 32-bit registers allocated per thread (from the register
            [Alloc]s), an occupancy limiter *)
  }

val zero : totals
val add : totals -> totals -> totals
val scale : float -> totals -> totals

(** [of_kernel arch kernel ~scalars] — totals over the whole grid.
    Raises [Failure] when an undecomposed spec matches no atomic spec or a
    loop bound cannot be evaluated from [scalars]. *)
val of_kernel :
  Graphene.Arch.t ->
  Graphene.Spec.kernel ->
  ?scalars:(string * int) list ->
  unit ->
  totals

val pp : Format.formatter -> totals -> unit
