(** Machine descriptors for the two GPUs of the paper's evaluation.

    Peak rates are derived from the public datasheets at the base (locked)
    clocks the paper measures at ("Nsight-Compute ... automatically locks the
    clocks to base frequencies"). The performance model only needs ratios and
    roofline positions to reproduce the *shape* of the paper's figures. *)

type t =
  { arch : Graphene.Arch.t
  ; name : string
  ; sm_count : int
  ; clock_ghz : float  (** base clock *)
  ; tc_flops_per_sm_cycle : int
        (** fp16 tensor-core flops (mul+add counted separately) per SM per
            cycle *)
  ; fma_flops_per_sm_cycle : int  (** fp32 CUDA-core flops per SM per cycle *)
  ; dram_bytes_per_sec : float
  ; smem_bytes_per_sm_cycle : int  (** shared-memory bandwidth per SM *)
  ; smem_bytes_per_block : int  (** usable shared memory per thread block *)
  ; max_threads_per_sm : int
  ; registers_per_sm : int  (** 32-bit registers in the SM register file *)
  ; kernel_launch_overhead_s : float
  ; l2_amplification : float
        (** upper bound on DRAM-traffic reduction the L2 can provide for
            tiled streaming kernels *)
  ; tc_efficiency : float
        (** achievable fraction of tensor-core peak for a well-tuned kernel
            (both cuBLAS and Graphene reach this, paper Figure 9) *)
  ; mem_efficiency : float  (** achievable fraction of DRAM peak *)
  }

(** Tesla V100 (SM70). *)
val v100 : t

(** RTX A6000 (SM86). *)
val a6000 : t

val of_arch : Graphene.Arch.t -> t

(** Peak tensor-core throughput in flop/s at base clock. *)
val tc_peak_flops : t -> float

(** Peak fp32 FMA throughput in flop/s. *)
val fma_peak_flops : t -> float

(** Aggregate shared-memory bandwidth in bytes/s. *)
val smem_peak_bytes : t -> float
