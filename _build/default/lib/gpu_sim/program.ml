type t =
  { kernels : Graphene.Spec.kernel list
  ; intermediates : (string * int) list
  }

let make ?(intermediates = []) kernels = { kernels; intermediates }

let run ~arch t ~args ?(scalars = []) () =
  let inter =
    List.map (fun (name, n) -> (name, Array.make n 0.0)) t.intermediates
  in
  let all_args = args @ inter in
  let merged = Counters.create () in
  List.iter
    (fun (kernel : Graphene.Spec.kernel) ->
      (* Bind only the buffers this kernel declares as parameters. *)
      let params =
        List.filter_map
          (fun (p : Gpu_tensor.Tensor.t) ->
            Option.map
              (fun data -> (p.Gpu_tensor.Tensor.buffer, data))
              (List.assoc_opt p.Gpu_tensor.Tensor.buffer all_args))
          kernel.Graphene.Spec.params
      in
      let c = Interp.run ~arch kernel ~args:params ~scalars () in
      Counters.merge merged c)
    t.kernels;
  merged

let validate arch t =
  List.concat_map (Graphene.Validate.check arch) t.kernels

let estimate machine t ?scalars () =
  Perf_model.sequence
    (List.map (fun k -> Perf_model.of_kernel machine k ?scalars ()) t.kernels)
