(** Multi-kernel programs: a sequence of kernel launches with shared
    intermediate buffers (e.g. the split-K GEMM's fp32 partial tensor, or
    an unfused kernel chain used as a baseline).

    Execution allocates the intermediates, runs the kernels in order
    against the same buffer bindings, and merges their counters; the time
    estimate is the launch-by-launch sum, exactly how the paper costs
    "cumulative library invocations". *)

type t =
  { kernels : Graphene.Spec.kernel list
  ; intermediates : (string * int) list
        (** buffer name and element count, allocated zero-initialized *)
  }

val make :
  ?intermediates:(string * int) list -> Graphene.Spec.kernel list -> t

(** [run ~arch t ~args ~scalars ()] — [args] bind the external parameters;
    intermediates are created internally (and discarded). Returns the
    merged counters of all launches. *)
val run :
  arch:Graphene.Arch.t ->
  t ->
  args:(string * float array) list ->
  ?scalars:(string * int) list ->
  unit ->
  Counters.t

(** Every kernel must be well-formed on the architecture. *)
val validate : Graphene.Arch.t -> t -> string list

(** Sum of the per-launch estimates. *)
val estimate :
  Machine.t -> t -> ?scalars:(string * int) list -> unit -> Perf_model.estimate
