(** cuDNN-style standalone pointwise kernels, used by the unfused LSTM
    baseline (paper Figure 12: "one library kernel per node in the graph"). *)

(** [Z = X + Y] over [elems] fp16 values. *)
val add :
  Gpu_sim.Machine.t -> elems:int -> Gpu_sim.Perf_model.estimate

(** Broadcast bias add over [rows x cols]. *)
val bias_add :
  Gpu_sim.Machine.t -> rows:int -> cols:int -> Gpu_sim.Perf_model.estimate

(** Elementwise activation. *)
val activation :
  Gpu_sim.Machine.t -> elems:int -> Gpu_sim.Perf_model.estimate
