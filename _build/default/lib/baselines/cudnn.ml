module PM = Gpu_sim.Perf_model

let add machine ~elems =
  PM.of_totals machine
    (Lib_model.pointwise_totals ~reads:(2 * elems) ~writes:elems
       ~flops_per_elem:1 ())

let bias_add machine ~rows ~cols =
  let elems = rows * cols in
  PM.of_totals machine
    (Lib_model.pointwise_totals ~reads:(elems + cols) ~writes:elems
       ~flops_per_elem:1 ())

let activation machine ~elems =
  PM.of_totals machine
    (Lib_model.pointwise_totals ~reads:elems ~writes:elems ~flops_per_elem:2 ())
