(* TensorRT's hand-tuned layouts avoid the bulk of the bank conflicts a
   naive score layout incurs, but not all of them; it shares the conflicts
   common to the algorithm (e.g. the softmax phase). Modeled as the
   swizzled kernel's measured penalty plus a small residual of the
   layout-specific extra — hence the paper's "small speedup" for
   Graphene's optimized shared-memory layouts. *)
let residual_conflict_fraction = 0.06

let estimate machine ~smem_penalty_naive ~smem_penalty_swizzled ~batch ~heads
    ~seq ~dh ~chunk ~nthreads =
  let kernel =
    Kernels.Fmha.kernel ~swizzle_smem:false machine.Gpu_sim.Machine.arch
      ~batch ~heads ~seq ~dh ~chunk ~nthreads ()
  in
  let penalty =
    smem_penalty_swizzled
    +. ((smem_penalty_naive -. smem_penalty_swizzled)
       *. residual_conflict_fraction)
  in
  Gpu_sim.Perf_model.of_kernel ~smem_penalty:penalty machine kernel ()
