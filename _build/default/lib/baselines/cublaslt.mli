(** cuBLASLt cost model: GEMMs with fused pointwise epilogues
    (paper Figures 10-12). *)

(** One kernel: [C = act(A @ B + bias)]. *)
val gemm_epilogue :
  Gpu_sim.Machine.t ->
  epilogue:Kernels.Epilogue.t ->
  m:int ->
  n:int ->
  k:int ->
  unit ->
  Gpu_sim.Perf_model.estimate

(** The optimized two-kernel LSTM-cell lowering (paper Figure 12): the
    second GEMM accumulates into the first's output and fuses bias and
    activation — but the intermediate still round-trips global memory. *)
val lstm_two_kernels :
  Gpu_sim.Machine.t ->
  m:int ->
  n:int ->
  k:int ->
  unit ->
  Gpu_sim.Perf_model.estimate

(** Multi-layer MLP as [layers] successive fused-epilogue GEMM calls, every
    activation bouncing through global memory (paper Figure 11's
    comparator). *)
val mlp_layers :
  Gpu_sim.Machine.t ->
  m:int ->
  width:int ->
  layers:int ->
  unit ->
  Gpu_sim.Perf_model.estimate
