(** PyTorch reference implementations of Layernorm (paper Figure 13) and
    the unfused attention used as the Figure 14 baseline and inside the
    Figure 15 end-to-end networks. *)

type layernorm_impl =
  | Eager  (** default eager execution: one kernel per primitive op *)
  | Jit  (** Torchscript fusion: pointwise chains fused, reductions apart *)
  | Fused  (** the built-in fused Layernorm CUDA kernel *)
  | Apex  (** NVIDIA Apex's hand-tuned fused kernel *)

val layernorm_impls : layernorm_impl list
val impl_name : layernorm_impl -> string

val layernorm :
  Gpu_sim.Machine.t ->
  impl:layernorm_impl ->
  rows:int ->
  cols:int ->
  Gpu_sim.Perf_model.estimate

(** Unfused multi-head attention: batched [Q K^T] (cuBLAS), a standalone
    softmax kernel, and batched [P V] — the "cumulative execution time" of
    paper Figure 14's baseline. *)
val unfused_attention :
  Gpu_sim.Machine.t ->
  batch:int ->
  heads:int ->
  seq:int ->
  dh:int ->
  Gpu_sim.Perf_model.estimate

(** Full eager-mode PyTorch attention: {!unfused_attention} plus the
    reshape/transpose and scale+mask kernels eager execution launches —
    the attention block replaced in the paper's Figure 15 end-to-end
    experiment. *)
val eager_attention :
  Gpu_sim.Machine.t ->
  batch:int ->
  heads:int ->
  seq:int ->
  dh:int ->
  Gpu_sim.Perf_model.estimate
