lib/baselines/cublas.mli: Gpu_sim
