lib/baselines/cudnn.mli: Gpu_sim
