lib/baselines/trt_fmha.mli: Gpu_sim
