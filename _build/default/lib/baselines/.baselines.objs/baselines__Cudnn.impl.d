lib/baselines/cudnn.ml: Gpu_sim Lib_model
