lib/baselines/pytorch.mli: Gpu_sim
