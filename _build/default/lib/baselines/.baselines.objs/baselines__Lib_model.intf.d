lib/baselines/lib_model.mli: Gpu_sim
