lib/baselines/pytorch.ml: Gpu_sim Lib_model
