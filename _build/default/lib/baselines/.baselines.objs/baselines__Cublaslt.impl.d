lib/baselines/cublaslt.ml: Gpu_sim Kernels Lib_model List
