lib/baselines/cublaslt.mli: Gpu_sim Kernels
