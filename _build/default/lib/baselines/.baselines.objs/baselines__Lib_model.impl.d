lib/baselines/lib_model.ml: Gpu_sim List
