lib/baselines/trt_fmha.ml: Gpu_sim Kernels
