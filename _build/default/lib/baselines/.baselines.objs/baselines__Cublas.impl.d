lib/baselines/cublas.ml: Gpu_sim Graphene Kernels Lib_model
