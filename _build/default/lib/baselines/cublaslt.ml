module PM = Gpu_sim.Perf_model
module Epi = Kernels.Epilogue

let gemm_epilogue machine ~epilogue ~m ~n ~k () =
  let arch = machine.Gpu_sim.Machine.arch in
  let cfg = Kernels.Gemm.default_config arch in
  if
    m mod cfg.Kernels.Gemm.bm = 0
    && n mod cfg.Kernels.Gemm.bn = 0
    && k mod cfg.Kernels.Gemm.bk = 0
  then
    (* Same tiles, same kernel structure (see Cublas.gemm). *)
    PM.of_kernel machine
      (Kernels.Gemm.tensor_core arch cfg ~epilogue ~m ~n ~k ())
      ()
  else
    PM.of_totals machine
      (Lib_model.gemm_totals
         ~epilogue_flops_per_elem:(Epi.flops_per_element epilogue)
         ~bias:epilogue.Epi.bias ~m ~n ~k ())

let lstm_two_kernels machine ~m ~n ~k () =
  let first = Lib_model.gemm_totals ~m ~n ~k () in
  let second =
    Lib_model.gemm_totals ~c_read:true ~bias:true ~epilogue_flops_per_elem:1
      ~m ~n ~k ()
  in
  Lib_model.sequence machine [ first; second ]

let mlp_layers machine ~m ~width ~layers () =
  let layer =
    Lib_model.gemm_totals ~bias:true ~epilogue_flops_per_elem:1 ~m ~n:width
      ~k:width ()
  in
  Lib_model.sequence machine (List.init layers (fun _ -> layer))
