module SA = Gpu_sim.Static_analysis

let ceil_div a b = (a + b - 1) / b

let gemm_totals ?(batch = 1) ?(epilogue_flops_per_elem = 0) ?(bias = false)
    ?(c_read = false) ~m ~n ~k () =
  let bm = 128 and bn = 128 and bk = 32 in
  let blocks_m = ceil_div m bm and blocks_n = ceil_div n bn in
  let m' = blocks_m * bm and n' = blocks_n * bn in
  let k' = ceil_div k bk * bk in
  let blocks = batch * blocks_m * blocks_n in
  let fb = float_of_int batch in
  let tc_flops = fb *. (2.0 *. float_of_int m' *. float_of_int n' *. float_of_int k') in
  let fma_flops =
    fb *. float_of_int (epilogue_flops_per_elem * m * n)
    +. if bias then fb *. float_of_int (m * n) else 0.0
  in
  (* Issued tile traffic: every block streams its A row panel and B column
     panel; C is written once (and read once for accumulating calls). *)
  let tile_bytes =
    fb
    *. float_of_int
         (((blocks_m * blocks_n * ((bm * k') + (k' * bn))) + (m * n))
         * 2)
  in
  let c_read_bytes = if c_read then fb *. float_of_int (m * n * 2) else 0.0 in
  let global_bytes = tile_bytes +. c_read_bytes in
  (* Staged tiles are written to and re-read from shared memory several
     times (fragment loads); factor matches the IR-derived GEMM kernel. *)
  let shared_bytes = 4.0 *. (tile_bytes -. (fb *. float_of_int (m * n * 2))) in
  let param_bytes =
    fb
    *. float_of_int
         (((m * k) + (k * n) + (m * n) + (if bias then n else 0)) * 2)
    +. c_read_bytes
  in
  { SA.tc_flops
  ; fma_flops
  ; global_bytes
  ; shared_bytes
  ; instructions = tc_flops /. 4096.0
  ; blocks
  ; threads_per_block = 256
  ; smem_bytes_per_block = (bm + bn) * bk * 2
  ; param_bytes
  ; regs_per_thread = 128
  }

let pointwise_totals ~reads ~writes ~flops_per_elem () =
  let bytes = float_of_int ((reads + writes) * 2) in
  { SA.tc_flops = 0.0
  ; fma_flops = float_of_int (flops_per_elem * writes)
  ; global_bytes = bytes
  ; shared_bytes = 0.0
  ; instructions = float_of_int (reads + writes) /. 8.0
  ; blocks = max 1 (ceil_div writes 2048)
  ; threads_per_block = 256
  ; smem_bytes_per_block = 0
  ; param_bytes = bytes
  ; regs_per_thread = 32
  }

let row_reduce_totals ~rows ~cols () =
  let read = float_of_int (rows * cols * 2) in
  { SA.tc_flops = 0.0
  ; fma_flops = float_of_int (rows * cols)
  ; global_bytes = read +. float_of_int (rows * 4)
  ; shared_bytes = float_of_int (rows * 256)
  ; instructions = float_of_int (rows * cols) /. 8.0
  ; blocks = max 1 rows
  ; threads_per_block = 256
  ; smem_bytes_per_block = 128
  ; param_bytes = read +. float_of_int (rows * 4)
  ; regs_per_thread = 32
  }

let sequence machine totals =
  Gpu_sim.Perf_model.sequence
    (List.map (Gpu_sim.Perf_model.of_totals machine) totals)
