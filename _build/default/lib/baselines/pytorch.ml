module PM = Gpu_sim.Perf_model

type layernorm_impl = Eager | Jit | Fused | Apex

let layernorm_impls = [ Eager; Jit; Fused; Apex ]

let impl_name = function
  | Eager -> "PyTorch Eager"
  | Jit -> "PyTorch JIT"
  | Fused -> "PyTorch fused"
  | Apex -> "NVIDIA Apex"

let layernorm machine ~impl ~rows ~cols =
  let n = rows * cols in
  let reduce () = Lib_model.row_reduce_totals ~rows ~cols () in
  let pw ?(reads = n) ?(writes = n) flops =
    Lib_model.pointwise_totals ~reads ~writes ~flops_per_elem:flops ()
  in
  match impl with
  | Eager ->
    (* mean, centred difference, variance, normalize, scale, shift: one
       kernel per primitive, intermediates in global memory. *)
    Lib_model.sequence machine
      [ reduce (); pw 1; reduce (); pw 2; pw ~reads:(n + cols) 1
      ; pw ~reads:(n + cols) 1
      ]
  | Jit ->
    (* Torchscript fuses the pointwise chains but keeps the reductions as
       separate kernels. *)
    Lib_model.sequence machine [ reduce (); reduce (); pw ~reads:(n + (2 * cols)) 4 ]
  | Fused | Apex ->
    (* Single fused kernel: read the row, two in-register reductions,
       normalize, write. Apex and the built-in kernel share this
       structure. *)
    Lib_model.sequence machine [ pw ~reads:(n + (2 * cols)) ~writes:n 8 ]

let attention_pieces ~batch ~heads ~seq ~dh =
  let b = batch * heads in
  let bss = b * seq * seq in
  let scores = Lib_model.gemm_totals ~batch:b ~m:seq ~n:seq ~k:dh () in
  let softmax =
    Lib_model.pointwise_totals ~reads:(2 * bss) ~writes:bss ~flops_per_elem:5 ()
  in
  let output = Lib_model.gemm_totals ~batch:b ~m:seq ~n:dh ~k:seq () in
  (scores, softmax, output)

let unfused_attention machine ~batch ~heads ~seq ~dh =
  let scores, softmax, output = attention_pieces ~batch ~heads ~seq ~dh in
  Lib_model.sequence machine [ scores; softmax; output ]

let eager_attention machine ~batch ~heads ~seq ~dh =
  let b = batch * heads in
  let bsd = b * seq * dh in
  let bss = b * seq * seq in
  (* Full eager-mode attention additionally pays reshape/transpose copies
     for Q, K and V (batch-seq-hidden -> batch-heads-seq-dh), a scale+mask
     kernel on the scores, and the inverse transpose of the context — all
     separate kernels through global memory. *)
  let transpose n = Lib_model.pointwise_totals ~reads:n ~writes:n ~flops_per_elem:0 () in
  let scores, softmax, output = attention_pieces ~batch ~heads ~seq ~dh in
  let scale_mask =
    Lib_model.pointwise_totals ~reads:(2 * bss) ~writes:bss ~flops_per_elem:2 ()
  in
  Lib_model.sequence machine
    [ transpose bsd; transpose bsd; transpose bsd; scores; scale_mask
    ; softmax; output; transpose bsd
    ]
