module PM = Gpu_sim.Perf_model

(* The paper evaluates with identical tile sizes on both sides ("we ensured
   to use exactly the same tile sizes as those used by cuBLAS"), so where
   the default configuration fits we cost cuBLAS with the Graphene kernel's
   own IR-derived totals; otherwise the analytic library model stands in. *)
let gemm machine ?(batch = 1) ~m ~n ~k () =
  let arch = machine.Gpu_sim.Machine.arch in
  let cfg = Kernels.Gemm.default_config arch in
  if
    batch = 1
    && m mod cfg.Kernels.Gemm.bm = 0
    && n mod cfg.Kernels.Gemm.bn = 0
    && k mod cfg.Kernels.Gemm.bk = 0
  then
    PM.of_kernel machine
      (Kernels.Gemm.tensor_core arch cfg ~epilogue:Kernels.Epilogue.none ~m
         ~n ~k ())
      ()
  else PM.of_totals machine (Lib_model.gemm_totals ~batch ~m ~n ~k ())

let memory_util machine ~m ~n ~k =
  let est = gemm machine ~m ~n ~k () in
  (* Better panel scheduling: fewer L2->DRAM misses on Ampere. *)
  let scale =
    match machine.Gpu_sim.Machine.arch with
    | Graphene.Arch.SM86 -> 0.62
    | Graphene.Arch.SM70 -> 0.95
  in
  est.PM.dram_util *. scale
