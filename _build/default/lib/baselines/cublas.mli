(** cuBLAS cost model: one tensor-core GEMM kernel per call (paper
    Figure 9's comparator). *)

(** Plain [C = A @ B]. *)
val gemm :
  Gpu_sim.Machine.t ->
  ?batch:int ->
  m:int ->
  n:int ->
  k:int ->
  unit ->
  Gpu_sim.Perf_model.estimate

(** The paper notes the Ampere cuBLAS kernel achieves the same time with
    noticeably lower memory throughput than Graphene's (better L2
    scheduling); this reports the achieved DRAM fraction with that
    adjustment, for the Figure 9 columns. *)
val memory_util : Gpu_sim.Machine.t -> m:int -> n:int -> k:int -> float
