(** Analytic cost models for closed-source library kernels.

    The comparators of the paper's evaluation (cuBLAS, cuBLASLt, cuDNN,
    PyTorch, TensorRT) are closed source; what the figures depend on is
    their {e kernel-launch structure} and near-peak per-kernel efficiency
    (the paper itself establishes that Graphene merely {e matches} cuBLAS
    per kernel). Each function here builds {!Gpu_sim.Static_analysis.totals}
    for one library call, mirroring the traffic a 128x128x32-tiled GEMM or
    a streaming pointwise kernel issues; {!Gpu_sim.Perf_model} turns them
    into time. See DESIGN.md ("substitutions"). *)

(** One dense GEMM kernel call: [C = A @ B (+bias)(+act)], fp16 tensor-core,
    sizes padded up to the library's 128x128x32 tiles.
    [batch] multiplies everything (batched GEMM in a single launch).
    [c_read] adds a read of C (accumulating GEMMs, cuBLASLt beta=1). *)
val gemm_totals :
  ?batch:int ->
  ?epilogue_flops_per_elem:int ->
  ?bias:bool ->
  ?c_read:bool ->
  m:int ->
  n:int ->
  k:int ->
  unit ->
  Gpu_sim.Static_analysis.totals

(** A streaming elementwise kernel: reads [reads] and writes [writes]
    fp16 elements with [flops_per_elem] work each. *)
val pointwise_totals :
  reads:int -> writes:int -> flops_per_elem:int -> unit ->
  Gpu_sim.Static_analysis.totals

(** A row-reduction kernel (mean/var/softmax-style pass): reads [rows*cols]
    and writes [rows] fp32 statistics. *)
val row_reduce_totals :
  rows:int -> cols:int -> unit -> Gpu_sim.Static_analysis.totals

(** Time for a sequence of library calls on the machine — each call pays a
    kernel-launch overhead. *)
val sequence :
  Gpu_sim.Machine.t ->
  Gpu_sim.Static_analysis.totals list ->
  Gpu_sim.Perf_model.estimate
