(** NVIDIA's handwritten fused MHA kernels (TensorRT / MLPerf BERT
    submission), the strong baseline of paper Figure 14.

    Modeled as the {e same} fusion structure as the Graphene FMHA kernel —
    the two kernels differ only in shared-memory layout: the paper
    attributes its small edge to "optimized shared memory layouts", which
    the simulator quantifies as the bank-conflict ratio of the unswizzled
    score buffer. *)

(** [estimate machine ~smem_penalty_naive ~smem_penalty_swizzled ...] —
    the penalties (>= 1) are the measured conflict degradations of the
    unswizzled and swizzled layouts (from {!Gpu_sim.Counters}); TensorRT is
    modeled at the swizzled level plus a small residual of the
    layout-specific difference. *)
val estimate :
  Gpu_sim.Machine.t ->
  smem_penalty_naive:float ->
  smem_penalty_swizzled:float ->
  batch:int ->
  heads:int ->
  seq:int ->
  dh:int ->
  chunk:int ->
  nthreads:int ->
  Gpu_sim.Perf_model.estimate
