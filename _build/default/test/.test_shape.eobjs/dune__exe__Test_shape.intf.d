test/test_shape.mli:
