test/test_experiments.ml: Alcotest Experiments Graphene List Printf String
