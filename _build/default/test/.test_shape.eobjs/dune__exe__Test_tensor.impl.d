test/test_tensor.ml: Alcotest Array Float Fun Gpu_tensor List QCheck QCheck_alcotest Shape Stdlib
