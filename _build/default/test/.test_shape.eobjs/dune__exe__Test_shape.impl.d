test/test_shape.ml: Alcotest Array Fun List Printf QCheck QCheck_alcotest Shape String
