test/test_core.ml: Alcotest Array Gpu_sim Gpu_tensor Graphene Kernels List Printf Reference Shape String
