test/test_tuner.ml: Alcotest Array Gpu_sim Graphene Kernels List Printf Reference Tuner
