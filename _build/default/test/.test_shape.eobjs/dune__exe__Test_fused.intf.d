test/test_fused.mli:
