test/test_codegen.ml: Alcotest Codegen Gpu_tensor Graphene Kernels List Shape String Sys
