test/test_reductions.ml: Alcotest Array Float Gpu_sim Graphene Kernels List QCheck QCheck_alcotest Reference String
