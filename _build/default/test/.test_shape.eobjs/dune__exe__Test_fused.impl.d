test/test_fused.ml: Alcotest Array Gpu_sim Gpu_tensor Graphene Kernels Reference String
