test/test_gemm.mli:
