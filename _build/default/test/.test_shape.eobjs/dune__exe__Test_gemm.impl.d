test/test_gemm.ml: Alcotest Array Gpu_sim Gpu_tensor Graphene Kernels List Printf QCheck QCheck_alcotest Reference String
