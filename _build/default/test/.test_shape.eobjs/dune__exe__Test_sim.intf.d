test/test_sim.mli:
