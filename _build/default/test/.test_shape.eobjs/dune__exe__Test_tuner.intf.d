test/test_tuner.mli:
