test/test_workloads.ml: Alcotest Baselines Gpu_sim Gpu_tensor Graphene Kernels List Shape Workloads
