(* End-to-end tests for the fused kernels of the paper's evaluation:
   multi-layer MLP (Fig. 11), the LSTM cell (Fig. 12), and fused
   multi-head attention (Fig. 14). *)

module Arch = Graphene.Arch
module Validate = Graphene.Validate
module Ref = Reference.Cpu_ref
module Interp = Gpu_sim.Interp

let check_bool = Alcotest.(check bool)

let validated arch kernel =
  match Validate.check arch kernel with
  | [] -> kernel
  | problems -> Alcotest.failf "ill-formed kernel:\n%s" (String.concat "\n" problems)

(* ----- MLP ----- *)

let mlp_ref ~m ~width ~layers x w biases =
  let cur = ref (Array.copy x) in
  for l = 0 to layers - 1 do
    let out = Array.make (m * width) 0.0 in
    let wl = Array.sub w (l * width * width) (width * width) in
    Ref.gemm ~m ~n:width ~k:width !cur wl out;
    Ref.bias_add ~rows:m ~cols:width out (Array.sub biases (l * width) width);
    Ref.relu out;
    (* The kernel keeps intermediates in fp16 shared memory. *)
    cur := Array.map (Gpu_tensor.Dtype.round Gpu_tensor.Dtype.FP16) out
  done;
  !cur

let run_mlp ~arch ~m ~width ~layers ~bm ~wm ~wn () =
  let kernel =
    validated arch
      (Kernels.Mlp.kernel arch ~m ~width ~layers ~bm ~wm ~wn ())
  in
  let x = Ref.random_fp16 ~seed:31 (m * width) in
  let w = Ref.random_fp16 ~seed:32 (layers * width * width) in
  (* Keep activations in fp16 range through many layers. *)
  let w = Array.map (fun v -> v /. 8.0) w in
  let biases = Ref.random_fp16 ~seed:33 (layers * width) in
  let y = Array.make (m * width) 0.0 in
  let _ =
    Interp.run ~arch kernel
      ~args:[ ("X", x); ("W", w); ("biases", biases); ("Y", y) ]
      ()
  in
  (y, mlp_ref ~m ~width ~layers x w biases)

let test_mlp_single_layer () =
  let y, y_ref = run_mlp ~arch:Arch.SM86 ~m:64 ~width:64 ~layers:1 ~bm:64 ~wm:32 ~wn:32 () in
  check_bool "matches reference" true (Ref.allclose y y_ref)

let test_mlp_three_layers () =
  let y, y_ref = run_mlp ~arch:Arch.SM86 ~m:64 ~width:64 ~layers:3 ~bm:64 ~wm:32 ~wn:32 () in
  check_bool "matches reference" true (Ref.allclose ~rtol:5e-2 ~atol:2e-2 y y_ref)

let test_mlp_multi_block () =
  let y, y_ref = run_mlp ~arch:Arch.SM86 ~m:128 ~width:64 ~layers:2 ~bm:64 ~wm:32 ~wn:32 () in
  check_bool "matches reference" true (Ref.allclose ~rtol:5e-2 ~atol:2e-2 y y_ref)

let test_mlp_sm70 () =
  let y, y_ref = run_mlp ~arch:Arch.SM70 ~m:32 ~width:32 ~layers:2 ~bm:32 ~wm:16 ~wn:16 () in
  check_bool "matches reference" true (Ref.allclose ~rtol:5e-2 ~atol:2e-2 y y_ref)

(* ----- LSTM cell ----- *)

let lstm_ref ~m ~n ~k x1 w1 x2 w2 bias =
  let z = Array.make (m * n) 0.0 in
  let z2 = Array.make (m * n) 0.0 in
  Ref.gemm ~m ~n ~k x1 w1 z;
  Ref.gemm ~m ~n ~k x2 w2 z2;
  Ref.add_into ~dst:z z2;
  Ref.bias_add ~rows:m ~cols:n z bias;
  Ref.relu z;
  z

let run_lstm ~arch ~m ~n ~k () =
  let cfg = Kernels.Gemm.test_config arch in
  let kernel = validated arch (Kernels.Lstm.kernel arch cfg ~m ~n ~k ()) in
  let x1 = Ref.random_fp16 ~seed:41 (m * k) in
  let w1 = Ref.random_fp16 ~seed:42 (k * n) in
  let x2 = Ref.random_fp16 ~seed:43 (m * k) in
  let w2 = Ref.random_fp16 ~seed:44 (k * n) in
  let bias = Ref.random_fp16 ~seed:45 n in
  let z = Array.make (m * n) 0.0 in
  let _ =
    Interp.run ~arch kernel
      ~args:
        [ ("X1", x1); ("W1", w1); ("X2", x2); ("W2", w2); ("bias", bias)
        ; ("Z", z)
        ]
      ()
  in
  (z, lstm_ref ~m ~n ~k x1 w1 x2 w2 bias)

let test_lstm_sm86 () =
  let z, z_ref = run_lstm ~arch:Arch.SM86 ~m:64 ~n:64 ~k:64 () in
  check_bool "matches reference" true (Ref.allclose z z_ref)

let test_lstm_sm70 () =
  let z, z_ref = run_lstm ~arch:Arch.SM70 ~m:32 ~n:32 ~k:32 () in
  check_bool "matches reference" true (Ref.allclose z z_ref)

(* ----- FMHA ----- *)

let fmha_ref ~batch ~heads ~seq ~dh q k v =
  let rows = batch * heads * seq in
  let out = Array.make (rows * dh) 0.0 in
  for bh = 0 to (batch * heads) - 1 do
    let off = bh * seq * dh in
    let slice a = Array.sub a off (seq * dh) in
    let o = Array.make (seq * dh) 0.0 in
    Ref.attention ~seq ~dh (slice q) (slice k) (slice v) o;
    Array.blit o 0 out off (seq * dh)
  done;
  out

let run_fmha ~batch ~heads ~seq ~dh ~chunk ~nthreads ?(swizzle = true) () =
  let arch = Arch.SM86 in
  let kernel =
    validated arch
      (Kernels.Fmha.kernel ~swizzle_smem:swizzle arch ~batch ~heads ~seq ~dh
         ~chunk ~nthreads ())
  in
  let rows = batch * heads * seq in
  let q = Ref.random_fp16 ~seed:51 (rows * dh) in
  let k = Ref.random_fp16 ~seed:52 (rows * dh) in
  let v = Ref.random_fp16 ~seed:53 (rows * dh) in
  let o = Array.make (rows * dh) 0.0 in
  let counters =
    Interp.run ~arch kernel
      ~args:[ ("Q", q); ("K", k); ("V", v); ("O", o) ]
      ()
  in
  (o, fmha_ref ~batch ~heads ~seq ~dh q k v, counters)

let test_fmha_tiny () =
  let o, o_ref, _ = run_fmha ~batch:1 ~heads:1 ~seq:32 ~dh:16 ~chunk:16 ~nthreads:64 () in
  check_bool "matches reference" true (Ref.allclose ~rtol:4e-2 ~atol:2e-2 o o_ref)

let test_fmha_two_heads () =
  let o, o_ref, _ = run_fmha ~batch:1 ~heads:2 ~seq:32 ~dh:16 ~chunk:16 ~nthreads:64 () in
  check_bool "matches reference" true (Ref.allclose ~rtol:4e-2 ~atol:2e-2 o o_ref)

let test_fmha_longer_seq () =
  let o, o_ref, _ = run_fmha ~batch:1 ~heads:1 ~seq:64 ~dh:32 ~chunk:16 ~nthreads:64 () in
  check_bool "matches reference" true (Ref.allclose ~rtol:4e-2 ~atol:2e-2 o o_ref)

let test_fmha_sm70 () =
  (* Volta: per-lane fragment staging, quad-pair mma, no cp.async. *)
  let arch = Arch.SM70 in
  let batch = 1 and heads = 1 and seq = 32 and dh = 32 in
  let kernel =
    validated arch
      (Kernels.Fmha.kernel ~swizzle_smem:false arch ~batch ~heads ~seq ~dh
         ~chunk:32 ~nthreads:64 ())
  in
  let rows = batch * heads * seq in
  let q = Ref.random_fp16 ~seed:54 (rows * dh) in
  let k = Ref.random_fp16 ~seed:55 (rows * dh) in
  let v = Ref.random_fp16 ~seed:56 (rows * dh) in
  let o = Array.make (rows * dh) 0.0 in
  let _ =
    Interp.run ~arch kernel ~args:[ ("Q", q); ("K", k); ("V", v); ("O", o) ] ()
  in
  let o_ref = fmha_ref ~batch ~heads ~seq ~dh q k v in
  check_bool "matches reference" true
    (Ref.allclose ~rtol:4e-2 ~atol:2e-2 o o_ref)

let test_fmha_causal () =
  let batch = 1 and heads = 1 and seq = 32 and dh = 16 in
  let kernel =
    Kernels.Fmha.kernel ~causal:true Arch.SM86 ~batch ~heads ~seq ~dh
      ~chunk:16 ~nthreads:64 ()
  in
  let rows = seq in
  let q = Ref.random_fp16 ~seed:57 (rows * dh) in
  let k = Ref.random_fp16 ~seed:58 (rows * dh) in
  let v = Ref.random_fp16 ~seed:59 (rows * dh) in
  let o = Array.make (rows * dh) 0.0 in
  let _ =
    Interp.run ~arch:Arch.SM86 kernel
      ~args:[ ("Q", q); ("K", k); ("V", v); ("O", o) ]
      ()
  in
  let o_ref = Array.make (rows * dh) 0.0 in
  Ref.attention_causal ~seq ~dh q k v o_ref;
  check_bool "matches causal reference" true
    (Ref.allclose ~rtol:4e-2 ~atol:2e-2 o o_ref);
  (* Row 0 attends only to itself: O[0] must equal V[0] (up to fp16). *)
  let head = Array.sub o 0 dh and v0 = Array.sub v 0 dh in
  check_bool "first row = V[0]" true (Ref.allclose ~rtol:2e-2 ~atol:1e-2 head v0)

let test_fmha_swizzle_ablation () =
  let o1, _, c1 = run_fmha ~batch:1 ~heads:1 ~seq:64 ~dh:32 ~chunk:16 ~nthreads:64 ~swizzle:true () in
  let o2, _, c2 = run_fmha ~batch:1 ~heads:1 ~seq:64 ~dh:32 ~chunk:16 ~nthreads:64 ~swizzle:false () in
  check_bool "same results" true (Ref.allclose o1 o2);
  check_bool "swizzle reduces bank conflicts" true
    (c1.Gpu_sim.Counters.shared_bank_conflicts
    <= c2.Gpu_sim.Counters.shared_bank_conflicts)

(* ----- custom fusion beyond the paper: GEMM + bias + residual + LN ----- *)

let gemm_ln_ref ~m ~k ~width x w bias r gamma beta =
  let z = Array.make (m * width) 0.0 in
  Ref.gemm ~m ~n:width ~k x w z;
  Ref.bias_add ~rows:m ~cols:width z bias;
  Ref.add_into ~dst:z r;
  Ref.layernorm ~rows:m ~cols:width ~gamma ~beta z;
  z

let run_gemm_ln ~arch ~m ~k ~width ~bm ~wm ~wn () =
  let kernel =
    validated arch
      (Kernels.Gemm_layernorm.kernel arch ~m ~k ~width ~bm ~wm ~wn ())
  in
  let x = Ref.random_fp16 ~seed:61 (m * k) in
  let w =
    Array.map (fun v -> v /. 4.0) (Ref.random_fp16 ~seed:62 (k * width))
  in
  let bias = Ref.random_fp16 ~seed:63 width in
  let r = Ref.random_fp16 ~seed:64 (m * width) in
  let gamma = Ref.random_fp16 ~seed:65 width in
  let beta = Ref.random_fp16 ~seed:66 width in
  let z = Array.make (m * width) 0.0 in
  let _ =
    Interp.run ~arch kernel
      ~args:
        [ ("X", x); ("W", w); ("bias", bias); ("R", r); ("gamma", gamma)
        ; ("beta", beta); ("Z", z)
        ]
      ()
  in
  (z, gemm_ln_ref ~m ~k ~width x w bias r gamma beta)

let test_gemm_ln_sm86 () =
  let z, z_ref =
    run_gemm_ln ~arch:Arch.SM86 ~m:64 ~k:64 ~width:64 ~bm:64 ~wm:32 ~wn:32 ()
  in
  check_bool "matches reference" true
    (Ref.allclose ~rtol:5e-2 ~atol:3e-2 z z_ref)

let test_gemm_ln_multi_block () =
  let z, z_ref =
    run_gemm_ln ~arch:Arch.SM86 ~m:128 ~k:32 ~width:64 ~bm:64 ~wm:32 ~wn:32 ()
  in
  check_bool "matches reference" true
    (Ref.allclose ~rtol:5e-2 ~atol:3e-2 z z_ref)

(* ----- split-K: a two-kernel decomposition ----- *)

let test_split_k () =
  let arch = Arch.SM86 in
  let m = 32 and n = 64 and k = 128 and splits = 2 in
  let cfg = { (Kernels.Gemm.test_config arch) with Kernels.Gemm.bm = 32; wm = 32; wn = 16 } in
  let partial, reduce =
    Kernels.Gemm.split_k arch cfg ~epilogue:Kernels.Epilogue.bias_relu ~splits
      ~m ~n ~k ()
  in
  ignore (validated arch partial);
  ignore (validated arch reduce);
  let a = Ref.random_fp16 ~seed:71 (m * k) in
  let b = Ref.random_fp16 ~seed:72 (k * n) in
  let bias = Ref.random_fp16 ~seed:73 n in
  let c = Array.make (m * n) 0.0 in
  let program =
    Gpu_sim.Program.make
      ~intermediates:[ ("Cp", splits * m * n) ]
      [ partial; reduce ]
  in
  Alcotest.(check (list string)) "program validates" []
    (Gpu_sim.Program.validate arch program);
  let _ =
    Gpu_sim.Program.run ~arch program
      ~args:[ ("A", a); ("B", b); ("C", c); ("bias", bias) ]
      ()
  in
  let c_ref = Array.make (m * n) 0.0 in
  Ref.gemm ~m ~n ~k a b c_ref;
  Ref.bias_add ~rows:m ~cols:n c_ref bias;
  Ref.relu c_ref;
  check_bool "matches reference" true (Ref.allclose c c_ref)

let () =
  Alcotest.run "fused"
    [ ( "mlp"
      , [ Alcotest.test_case "single layer" `Quick test_mlp_single_layer
        ; Alcotest.test_case "three layers" `Quick test_mlp_three_layers
        ; Alcotest.test_case "multi block" `Quick test_mlp_multi_block
        ; Alcotest.test_case "sm70" `Quick test_mlp_sm70
        ] )
    ; ( "lstm"
      , [ Alcotest.test_case "sm86" `Quick test_lstm_sm86
        ; Alcotest.test_case "sm70" `Quick test_lstm_sm70
        ] )
    ; ( "fmha"
      , [ Alcotest.test_case "tiny" `Quick test_fmha_tiny
        ; Alcotest.test_case "two heads" `Quick test_fmha_two_heads
        ; Alcotest.test_case "longer sequence" `Quick test_fmha_longer_seq
        ; Alcotest.test_case "sm70 (volta)" `Quick test_fmha_sm70
        ; Alcotest.test_case "causal masking" `Quick test_fmha_causal
        ; Alcotest.test_case "swizzle ablation" `Quick
            test_fmha_swizzle_ablation
        ] )
    ; ( "split-k"
      , [ Alcotest.test_case "two-kernel decomposition" `Quick test_split_k ] )
    ; ( "gemm+layernorm (custom fusion)"
      , [ Alcotest.test_case "sm86" `Quick test_gemm_ln_sm86
        ; Alcotest.test_case "multi block" `Quick test_gemm_ln_multi_block
        ] )
    ]
