(* Tests for the baselines and workloads layers: library-call cost models
   and the transformer op-graph expansion. *)

module LM = Baselines.Lib_model
module PM = Gpu_sim.Perf_model
module SA = Gpu_sim.Static_analysis
module T = Workloads.Transformer

let check_bool = Alcotest.(check bool)
let machine = Gpu_sim.Machine.a6000

(* ----- lib_model ----- *)

let test_gemm_totals_flops () =
  let t = LM.gemm_totals ~m:1024 ~n:1024 ~k:1024 () in
  Alcotest.(check (float 1.0)) "2mnk" (2.0 *. (1024.0 ** 3.0)) t.SA.tc_flops;
  check_bool "has traffic" true (t.SA.global_bytes > 0.0);
  check_bool "param floor" true
    (t.SA.param_bytes >= float_of_int (3 * 1024 * 1024 * 2))

let test_gemm_totals_padding () =
  (* Non-divisible sizes pad up to the library's tiles. *)
  let exact = LM.gemm_totals ~m:1024 ~n:1024 ~k:1024 () in
  let ragged = LM.gemm_totals ~m:1000 ~n:1000 ~k:1000 () in
  check_bool "padded flops >= useful flops" true
    (ragged.SA.tc_flops >= 2.0 *. (1000.0 ** 3.0));
  check_bool "padded == next tile multiple" true
    (ragged.SA.tc_flops <= exact.SA.tc_flops)

let test_gemm_batched_scales () =
  let one = LM.gemm_totals ~m:256 ~n:256 ~k:64 () in
  let eight = LM.gemm_totals ~batch:8 ~m:256 ~n:256 ~k:64 () in
  Alcotest.(check (float 1.0)) "8x flops" (8.0 *. one.SA.tc_flops)
    eight.SA.tc_flops;
  Alcotest.(check int) "8x blocks" (8 * one.SA.blocks) eight.SA.blocks

let test_pointwise_totals () =
  let t = LM.pointwise_totals ~reads:1000 ~writes:500 ~flops_per_elem:2 () in
  Alcotest.(check (float 0.0)) "bytes" 3000.0 t.SA.global_bytes;
  Alcotest.(check (float 0.0)) "flops" 1000.0 t.SA.fma_flops

(* ----- baseline orderings ----- *)

let test_layernorm_impl_ordering () =
  let time impl =
    (Baselines.Pytorch.layernorm machine ~impl ~rows:4096 ~cols:2048).PM.time_s
  in
  check_bool "eager slowest" true
    (time Baselines.Pytorch.Eager > time Baselines.Pytorch.Jit);
  check_bool "jit above fused" true
    (time Baselines.Pytorch.Jit > time Baselines.Pytorch.Fused);
  Alcotest.(check (float 1e-9)) "apex == fused"
    (time Baselines.Pytorch.Fused)
    (time Baselines.Pytorch.Apex)

let test_attention_baselines () =
  let unfused =
    Baselines.Pytorch.unfused_attention machine ~batch:8 ~heads:12 ~seq:128
      ~dh:64
  in
  let eager =
    Baselines.Pytorch.eager_attention machine ~batch:8 ~heads:12 ~seq:128
      ~dh:64
  in
  check_bool "eager adds transpose/mask overhead" true
    (eager.PM.time_s > unfused.PM.time_s)

let test_cublas_matches_graphene_on_default_tiles () =
  (* The paper's methodology: same tiles => same kernel. *)
  let g =
    PM.of_kernel machine
      (Kernels.Gemm.tensor_core Graphene.Arch.SM86
         (Kernels.Gemm.default_config Graphene.Arch.SM86)
         ~epilogue:Kernels.Epilogue.none ~m:1024 ~n:1024 ~k:1024 ())
      ()
  in
  let c = Baselines.Cublas.gemm machine ~m:1024 ~n:1024 ~k:1024 () in
  Alcotest.(check (float 1e-12)) "identical" g.PM.time_s c.PM.time_s

(* ----- transformer workloads ----- *)

let test_transformer_configs () =
  List.iter
    (fun (c : T.config) ->
      Alcotest.(check int) (c.T.name ^ " head dim") 64 (T.head_dim c))
    T.all;
  check_bool "bert-large is deeper" true
    (T.bert_large.T.layers > T.bert_base.T.layers)

let test_transformer_breakdown () =
  List.iter
    (fun (c : T.config) ->
      let base = T.baseline_time machine c in
      let inj = T.fmha_injected_time machine c in
      check_bool (c.T.name ^ " fraction in (0,1)") true
        (base.T.attention_fraction > 0.0 && base.T.attention_fraction < 1.0);
      check_bool (c.T.name ^ " injection helps") true
        (inj.T.total_s < base.T.total_s);
      check_bool (c.T.name ^ " bounded by attention share") true
        (T.speedup machine c < 1.0 /. (1.0 -. base.T.attention_fraction) +. 0.01))
    T.all

let test_deeper_network_scales_linearly () =
  let t6 = (T.baseline_time machine T.distilbert).T.total_s in
  let t12 = (T.baseline_time machine T.bert_base).T.total_s in
  (* DistilBERT is BERT-base at half depth. *)
  Alcotest.(check (float 1e-9)) "half the layers, half the time" (2.0 *. t6) t12

(* ----- divergent barrier detection ----- *)

let test_divergent_barrier_rejected () =
  let module B = Graphene.Builder in
  let module Tt = Gpu_tensor.Thread_tensor in
  let grid = Tt.grid "g" [ 1 ] in
  let cta = Tt.cta "cta" [ 32 ] in
  let kernel =
    B.kernel "bad_sync" ~grid ~cta ~params:[]
      [ B.if_
          B.(B.thread_idx <. Shape.Int_expr.const 16)
          [ B.sync ]
      ]
  in
  check_bool "rejected" true
    (try
       ignore (Gpu_sim.Interp.run ~arch:Graphene.Arch.SM86 kernel ~args:[] ());
       false
     with Gpu_sim.Interp.Exec_error _ -> true)

let () =
  Alcotest.run "workloads"
    [ ( "lib_model"
      , [ Alcotest.test_case "gemm flops" `Quick test_gemm_totals_flops
        ; Alcotest.test_case "gemm padding" `Quick test_gemm_totals_padding
        ; Alcotest.test_case "batched scaling" `Quick test_gemm_batched_scales
        ; Alcotest.test_case "pointwise totals" `Quick test_pointwise_totals
        ] )
    ; ( "baselines"
      , [ Alcotest.test_case "layernorm ordering" `Quick
            test_layernorm_impl_ordering
        ; Alcotest.test_case "attention baselines" `Quick
            test_attention_baselines
        ; Alcotest.test_case "cublas == graphene on same tiles" `Quick
            test_cublas_matches_graphene_on_default_tiles
        ] )
    ; ( "transformers"
      , [ Alcotest.test_case "configs" `Quick test_transformer_configs
        ; Alcotest.test_case "breakdowns" `Quick test_transformer_breakdown
        ; Alcotest.test_case "depth scaling" `Quick
            test_deeper_network_scales_linearly
        ] )
    ; ( "interpreter safety"
      , [ Alcotest.test_case "divergent barrier rejected" `Quick
            test_divergent_barrier_rejected
        ] )
    ]
