(* Tests for the reduction-based fused kernels: Layernorm and Softmax. *)

module Arch = Graphene.Arch
module Validate = Graphene.Validate
module Ref = Reference.Cpu_ref
module Interp = Gpu_sim.Interp

let check_bool = Alcotest.(check bool)

let run_layernorm ~rows ~cols ~nthreads ~arch () =
  let kernel = Kernels.Layernorm.kernel ~rows ~cols ~nthreads () in
  (match Validate.check arch kernel with
  | [] -> ()
  | problems -> Alcotest.fail (String.concat "\n" problems));
  let x = Ref.random_fp16 ~seed:11 (rows * cols) in
  let gamma = Ref.random_fp16 ~seed:12 cols in
  let beta = Ref.random_fp16 ~seed:13 cols in
  let y = Array.make (rows * cols) 0.0 in
  let counters =
    Interp.run ~arch kernel
      ~args:[ ("X", x); ("gamma", gamma); ("beta", beta); ("Y", y) ]
      ()
  in
  let y_ref = Array.copy x in
  Ref.layernorm ~rows ~cols ~gamma ~beta y_ref;
  (y, y_ref, counters)

let test_layernorm_small () =
  let y, y_ref, _ = run_layernorm ~rows:4 ~cols:256 ~nthreads:64 ~arch:Arch.SM86 () in
  check_bool "matches reference" true (Ref.allclose ~rtol:3e-2 ~atol:2e-2 y y_ref)

let test_layernorm_multi_warp () =
  let y, y_ref, _ =
    run_layernorm ~rows:3 ~cols:1024 ~nthreads:128 ~arch:Arch.SM86 ()
  in
  check_bool "matches reference" true (Ref.allclose ~rtol:3e-2 ~atol:2e-2 y y_ref)

let test_layernorm_scalar_path () =
  (* npt = 4, exercising the non-vectorized loads. *)
  let y, y_ref, _ = run_layernorm ~rows:2 ~cols:128 ~nthreads:32 ~arch:Arch.SM86 () in
  check_bool "matches reference" true (Ref.allclose ~rtol:3e-2 ~atol:2e-2 y y_ref)

let test_layernorm_sm70 () =
  let y, y_ref, _ = run_layernorm ~rows:2 ~cols:512 ~nthreads:64 ~arch:Arch.SM70 () in
  check_bool "matches reference" true (Ref.allclose ~rtol:3e-2 ~atol:2e-2 y y_ref)

let run_softmax ~rows ~cols ~nthreads () =
  let kernel = Kernels.Softmax.kernel ~rows ~cols ~nthreads () in
  (match Validate.check Arch.SM86 kernel with
  | [] -> ()
  | problems -> Alcotest.fail (String.concat "\n" problems));
  let x = Ref.random_fp16 ~seed:21 (rows * cols) in
  let y = Array.make (rows * cols) 0.0 in
  let _ = Interp.run ~arch:Arch.SM86 kernel ~args:[ ("X", x); ("Y", y) ] () in
  let y_ref = Array.copy x in
  Ref.softmax_rows ~rows ~cols y_ref;
  (y, y_ref)

let test_softmax_small () =
  let y, y_ref = run_softmax ~rows:4 ~cols:256 ~nthreads:64 () in
  check_bool "matches reference" true (Ref.allclose ~rtol:3e-2 ~atol:5e-3 y y_ref)

let test_softmax_multi_warp () =
  let y, y_ref = run_softmax ~rows:2 ~cols:768 ~nthreads:96 () in
  check_bool "matches reference" true (Ref.allclose ~rtol:3e-2 ~atol:5e-3 y y_ref)

let test_softmax_rows_sum_to_one () =
  let y, _ = run_softmax ~rows:4 ~cols:256 ~nthreads:64 () in
  for r = 0 to 3 do
    let s = ref 0.0 in
    for c = 0 to 255 do
      s := !s +. y.((r * 256) + c)
    done;
    Alcotest.(check (float 0.02)) "row sums to 1" 1.0 !s
  done

let prop_layernorm_rows_normalized =
  QCheck.Test.make ~count:5 ~name:"layernorm output rows have ~zero mean"
    QCheck.(int_range 1 4)
    (fun seed ->
      let rows = 2 and cols = 256 and nthreads = 64 in
      let kernel = Kernels.Layernorm.kernel ~rows ~cols ~nthreads () in
      let x = Ref.random_fp16 ~seed (rows * cols) in
      let gamma = Array.make cols 1.0 in
      let beta = Array.make cols 0.0 in
      let y = Array.make (rows * cols) 0.0 in
      let _ =
        Interp.run ~arch:Arch.SM86 kernel
          ~args:[ ("X", x); ("gamma", gamma); ("beta", beta); ("Y", y) ]
          ()
      in
      let ok = ref true in
      for r = 0 to rows - 1 do
        let s = ref 0.0 in
        for c = 0 to cols - 1 do
          s := !s +. y.((r * cols) + c)
        done;
        if Float.abs (!s /. float_of_int cols) > 0.02 then ok := false
      done;
      !ok)

let () =
  Alcotest.run "reductions"
    [ ( "layernorm"
      , [ Alcotest.test_case "single warp" `Quick test_layernorm_small
        ; Alcotest.test_case "multi warp" `Quick test_layernorm_multi_warp
        ; Alcotest.test_case "scalar loads" `Quick test_layernorm_scalar_path
        ; Alcotest.test_case "sm70" `Quick test_layernorm_sm70
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_layernorm_rows_normalized ] )
    ; ( "softmax"
      , [ Alcotest.test_case "single warp" `Quick test_softmax_small
        ; Alcotest.test_case "multi warp" `Quick test_softmax_multi_warp
        ; Alcotest.test_case "rows sum to one" `Quick
            test_softmax_rows_sum_to_one
        ] )
    ]
