(* Regression tests over the regenerated figures: each of the paper's
   qualitative claims must keep holding as the models and kernels evolve. *)

module F = Experiments.Figures
module Arch = Graphene.Arch

let check_bool = Alcotest.(check bool)

let within x ~lo ~hi = x >= lo && x <= hi

(* Figure 9: Graphene == cuBLAS, compute-bound, on both architectures. *)
let test_fig9 () =
  List.iter
    (fun (r : F.fig9_row) ->
      check_bool
        (Printf.sprintf "%s speedup ~1" (Arch.name r.F.arch))
        true
        (within r.F.speedup ~lo:0.97 ~hi:1.03);
      check_bool "compute-bound (>70% of TC peak)" true
        (r.F.graphene_compute_pct > 70.0);
      check_bool "not memory-bound" true
        (r.F.graphene_memory_pct < r.F.graphene_compute_pct))
    (F.fig9 ());
  (* The paper's Ampere observation: cuBLAS reaches the same time with
     lower memory throughput. *)
  let ampere =
    List.find (fun (r : F.fig9_row) -> r.F.arch = Arch.SM86) (F.fig9 ())
  in
  check_bool "cuBLAS lower memory util on Ampere" true
    (ampere.F.cublas_memory_pct < ampere.F.graphene_memory_pct)

(* Figure 10: all epilogues match cuBLASLt. *)
let test_fig10 () =
  List.iter
    (fun (r : F.fig10_row) ->
      check_bool
        (Printf.sprintf "%s %s" (Arch.name r.F.arch) r.F.epilogue)
        true
        (within r.F.speedup ~lo:0.97 ~hi:1.05))
    (F.fig10 ())

(* Figure 11: speedup 1 at one layer, grows monotonically, exceeds 2x. *)
let test_fig11 () =
  let rows = F.fig11 () in
  List.iter
    (fun arch ->
      let mine =
        List.filter (fun (r : F.fig11_row) -> r.F.arch = arch) rows
      in
      let speeds = List.map (fun (r : F.fig11_row) -> r.F.speedup) mine in
      (match speeds with
      | first :: _ ->
        check_bool "single layer parity" true (within first ~lo:0.95 ~hi:1.1)
      | [] -> Alcotest.fail "no rows");
      let rec monotone = function
        | a :: (b :: _ as tl) -> a <= b +. 0.05 && monotone tl
        | _ -> true
      in
      check_bool "monotone in depth" true (monotone speeds);
      check_bool "fusion wins >2x at depth" true
        (List.exists (fun s -> s > 2.0) speeds))
    [ Arch.SM70; Arch.SM86 ]

(* Figure 12: fused > cuBLASLt > 5-kernel baseline, factors near the
   paper's 1.75/1.82. *)
let test_fig12 () =
  List.iter
    (fun arch ->
      let rows =
        List.filter (fun (r : F.fig12_row) -> r.F.arch = arch) (F.fig12 ())
      in
      match
        List.map (fun (r : F.fig12_row) -> r.F.speedup_vs_baseline) rows
      with
      | [ baseline; lt; fused ] ->
        check_bool "baseline is 1.0" true (within baseline ~lo:0.99 ~hi:1.01);
        check_bool "cuBLASLt beats baseline" true (lt > 1.2);
        check_bool "fused beats cuBLASLt" true (fused > lt);
        check_bool "fused factor near paper's 1.75-1.82" true
          (within fused ~lo:1.4 ~hi:2.2)
      | _ -> Alcotest.fail "expected three rows")
    [ Arch.SM70; Arch.SM86 ]

(* Figure 13: Graphene == fused == Apex; JIT and Eager strictly slower. *)
let test_fig13 () =
  let rows = F.fig13 ~rows:1024 ~hiddens:[ 1024; 4096 ] () in
  List.iter
    (fun arch ->
      List.iter
        (fun hidden ->
          let time impl =
            (List.find
               (fun (r : F.fig13_row) ->
                 r.F.arch = arch && r.F.hidden = hidden
                 && String.equal r.F.impl impl)
               rows)
              .F.us
          in
          let g = time "Graphene" in
          check_bool "matches Apex" true
            (within (g /. time "NVIDIA Apex") ~lo:0.8 ~hi:1.2);
          check_bool "beats JIT" true (time "PyTorch JIT" > 1.5 *. g);
          check_bool "beats Eager" true (time "PyTorch Eager" > 3.0 *. g))
        [ 1024; 4096 ])
    [ Arch.SM70; Arch.SM86 ]

(* Figure 14: fused > 2x over unfused; Graphene ahead of TensorRT. *)
let test_fig14 () =
  match F.fig14 () with
  | [ unfused; trt; graphene ] ->
    check_bool "unfused is 1.0" true
      (within unfused.F.speedup_vs_unfused ~lo:0.99 ~hi:1.01);
    check_bool "TRT > 2x" true (trt.F.speedup_vs_unfused > 2.0);
    check_bool "Graphene > 2x" true (graphene.F.speedup_vs_unfused > 2.0);
    check_bool "Graphene slightly ahead of TRT" true
      (graphene.F.us < trt.F.us
      && graphene.F.us > 0.7 *. trt.F.us)
  | _ -> Alcotest.fail "expected three rows"

(* Figure 15: all networks speed up; speedup correlates with FMHA
   fraction. *)
let test_fig15 () =
  let rows = F.fig15 () in
  List.iter
    (fun (r : F.fig15_row) ->
      check_bool (r.F.network ^ " speeds up") true (r.F.speedup > 1.1);
      check_bool (r.F.network ^ " below 2x") true (r.F.speedup < 2.0))
    rows;
  (* Correlation: sort by fraction, speedups must be non-decreasing. *)
  let sorted =
    List.sort
      (fun (a : F.fig15_row) b -> compare a.F.fmha_fraction b.F.fmha_fraction)
      rows
  in
  let rec monotone = function
    | (a : F.fig15_row) :: (b :: _ as tl) ->
      a.F.speedup <= b.F.speedup +. 0.02 && monotone tl
    | _ -> true
  in
  check_bool "speedup monotone in FMHA fraction" true (monotone sorted)

(* Ablations: every variant correct; the optimizations measurably help. *)
let test_ablations () =
  let rows = F.ablations () in
  List.iter
    (fun (r : F.ablation_row) -> check_bool (r.F.variant ^ " correct") true r.F.correct)
    rows;
  let find name variant =
    List.find
      (fun (r : F.ablation_row) ->
        String.equal r.F.name name && String.equal r.F.variant variant)
      rows
  in
  check_bool "ldmatrix saves instructions" true
    ((find "ldmatrix" "ldmatrix.x4/.x2.trans").F.instructions
    < (find "ldmatrix" "per-lane ld.shared").F.instructions);
  Alcotest.(check int)
    "swizzled layout is conflict-free" 0
    (find "smem layout" "swizzled").F.shared_conflicts;
  check_bool "linear layout conflicts" true
    ((find "smem layout" "linear").F.shared_conflicts > 0);
  check_bool "cp.async saves instructions" true
    ((find "staging" "cp.async").F.instructions
    < (find "staging" "through registers").F.instructions)

let () =
  Alcotest.run "experiments"
    [ ( "figures"
      , [ Alcotest.test_case "fig9 gemm parity" `Quick test_fig9
        ; Alcotest.test_case "fig10 epilogue parity" `Quick test_fig10
        ; Alcotest.test_case "fig11 mlp fusion" `Quick test_fig11
        ; Alcotest.test_case "fig12 lstm fusion" `Quick test_fig12
        ; Alcotest.test_case "fig13 layernorm" `Quick test_fig13
        ; Alcotest.test_case "fig14 fmha" `Slow test_fig14
        ; Alcotest.test_case "fig15 transformers" `Quick test_fig15
        ; Alcotest.test_case "ablations" `Slow test_ablations
        ] )
    ]
