(* Tests for the Graphene IR core: atomic-spec matching (Table 2),
   validation, builders, and the Figure 1 ldmatrix demo executed on the
   simulator. *)

module E = Shape.Int_expr
module L = Shape.Layout
module Ts = Gpu_tensor.Tensor
module Tt = Gpu_tensor.Thread_tensor
module Dt = Gpu_tensor.Dtype
module Ms = Gpu_tensor.Memspace
module B = Graphene.Builder
module Spec = Graphene.Spec
module Atomic = Graphene.Atomic
module Arch = Graphene.Arch

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let cta = Tt.cta "cta" [ 32 ]
let thr = Tt.select cta [ B.thread_idx ]
let warp = Tt.select (Tt.tile (Tt.linear "lin" 32 Tt.Thread) [ L.tile_spec 32 ]) [ E.zero ]

let rf name n dt = Ts.create name (L.vector n) dt Ms.Register
let gl name n dt = Ts.create name (L.vector n) dt Ms.Global
let sh name n dt = Ts.create name (L.vector n) dt Ms.Shared

let spec_of stmt =
  match stmt with Spec.Spec_stmt s -> s | _ -> Alcotest.fail "expected spec"

let match_name arch stmt =
  match Atomic.find arch (spec_of stmt) with
  | Some i -> i.Atomic.name
  | None -> "<none>"

(* ----- Table 2 matching ----- *)

let test_move_matching () =
  let m src dst = B.move ~threads:thr ~src ~dst () in
  check_str "vec8 fp16 load" "ld.global.v4.b32.f16x8"
    (match_name Arch.SM86 (m (gl "a" 8 Dt.FP16) (rf "r" 8 Dt.FP16)));
  check_str "scalar fp32 load" "ld.global.f32"
    (match_name Arch.SM86 (m (gl "a" 1 Dt.FP32) (rf "r" 1 Dt.FP32)));
  check_str "store" "st.global.v4.b32.f16x8"
    (match_name Arch.SM86 (m (rf "r" 8 Dt.FP16) (gl "a" 8 Dt.FP16)));
  check_str "cp.async on sm86" "cp.async.f16x8"
    (match_name Arch.SM86 (m (gl "a" 8 Dt.FP16) (sh "s" 8 Dt.FP16)));
  (* No cp.async on Volta: the same Move matches nothing. *)
  check_str "no direct GL->SH on sm70" "<none>"
    (match_name Arch.SM70 (m (gl "a" 8 Dt.FP16) (sh "s" 8 Dt.FP16)));
  check_str "register move" "mov.rf"
    (match_name Arch.SM86 (m (rf "a" 4 Dt.FP16) (rf "b" 4 Dt.FP16)));
  check_str "conversion" "cvt.fp16.fp32"
    (match_name Arch.SM86 (m (rf "a" 2 Dt.FP32) (rf "b" 2 Dt.FP16)))

let test_ldmatrix_matching () =
  let smem = Ts.create_rm "s" [ 16; 16 ] Dt.FP16 Ms.Shared in
  let tiled = Ts.tile smem [ L.tile_spec 8; L.tile_spec 8 ] in
  let frag = rf "f" 8 Dt.FP16 in
  let stmt = B.move ~threads:warp ~src:tiled ~dst:frag () in
  check_str "ldmatrix.x4" "ldmatrix.x4" (match_name Arch.SM86 stmt);
  check_str "not on volta" "<none>" (match_name Arch.SM70 stmt);
  (* A transposed view of the inner matrices selects the .trans variant. *)
  let trans_view =
    Ts.reinterpret smem
      ~layout:(L.vector 2 ~stride:(8 * 16))
      ~elem:
        (Ts.Tile
           { layout =
               L.make
                 (Shape.Int_tuple.of_ints [ 8; 8 ])
                 (Shape.Int_tuple.node
                    [ Shape.Int_tuple.of_int 1; Shape.Int_tuple.of_int 16 ])
           ; elem = Ts.Scalar Dt.FP16
           })
      ~offset:E.zero
  in
  let stmt2 = B.move ~threads:warp ~src:trans_view ~dst:(rf "f2" 4 Dt.FP16) () in
  check_str "ldmatrix.x2.trans" "ldmatrix.x2.trans" (match_name Arch.SM86 stmt2)

let test_mma_matching () =
  let mma a b c = B.matmul ~threads:warp ~a ~b ~c () in
  check_str "m16n8k16" "mma.m16n8k16"
    (match_name Arch.SM86
       (mma (rf "a" 8 Dt.FP16) (rf "b" 4 Dt.FP16) (rf "c" 4 Dt.FP32)));
  (* The Volta mma needs a quad-pair (8 threads), not a full warp. *)
  let qp_spec =
    L.make
      (Shape.Int_tuple.of_ints [ 4; 2 ])
      (Shape.Int_tuple.node
         [ Shape.Int_tuple.of_int 1; Shape.Int_tuple.of_int 16 ])
  in
  let qp =
    Tt.select (Tt.tile (Tt.linear "w" 32 Tt.Thread) [ Some qp_spec ]) [ E.zero ]
  in
  check_str "m8n8k4 (quad pair)" "mma.m8n8k4"
    (match_name Arch.SM70
       (match B.matmul ~threads:qp ~a:(rf "a" 4 Dt.FP16) ~b:(rf "b" 4 Dt.FP16)
                ~c:(rf "c" 8 Dt.FP32) () with s -> s));
  check_str "scalar fma fp16" "hfma"
    (match_name Arch.SM86
       (mma (rf "a" 1 Dt.FP16) (rf "b" 1 Dt.FP16) (rf "c" 1 Dt.FP16)
       |> fun s ->
       match s with
       | Spec.Spec_stmt sp -> Spec.Spec_stmt { sp with Spec.threads = thr }
       | other -> other))

let test_pointwise_and_misc_matching () =
  check_str "unary" "pointwise.unary"
    (match_name Arch.SM86
       (B.unary ~threads:thr Graphene.Op.Exp ~src:(rf "a" 4 Dt.FP32)
          ~dst:(rf "b" 4 Dt.FP32) ()));
  check_str "binary broadcast" "pointwise.binary"
    (match_name Arch.SM86
       (B.binary ~threads:thr Graphene.Op.Sub ~lhs:(rf "a" 8 Dt.FP32)
          ~rhs:(rf "m" 1 Dt.FP32) ~dst:(rf "b" 8 Dt.FP32) ()));
  check_str "thread reduction" "red.thread"
    (match_name Arch.SM86
       (B.reduction ~threads:thr Graphene.Op.Add ~axes:[ 0 ]
          ~src:(rf "a" 16 Dt.FP32) ~dst:(rf "s" 1 Dt.FP32) ()));
  check_str "shfl" "shfl.sync"
    (match_name Arch.SM86
       (B.shfl ~threads:warp (Spec.Bfly 16) ~src:(rf "a" 1 Dt.FP32)
          ~dst:(rf "b" 1 Dt.FP32) ()));
  check_str "init" "init"
    (match_name Arch.SM86 (B.init ~threads:thr 0.0 ~dst:(rf "a" 32 Dt.FP32) ()))

let test_registry_lookup () =
  check_bool "lookup known" true (Atomic.lookup "mma.m16n8k16" <> None);
  check_bool "lookup unknown" true (Atomic.lookup "frobnicate" = None);
  check_bool "registry is non-trivial" true (List.length Atomic.registry > 40)

(* ----- Validation ----- *)

let test_validate_catches_unmatched () =
  (* A 3-element fp16 move matches no vector width. *)
  let bad =
    B.move ~threads:thr ~src:(gl "a" 3 Dt.FP16) ~dst:(rf "r" 3 Dt.FP16) ()
  in
  let kernel =
    B.kernel "bad" ~grid:(Tt.grid "g" [ 1 ]) ~cta ~params:[ gl "a" 3 Dt.FP16 ]
      [ bad ]
  in
  check_bool "problem reported" true
    (Graphene.Validate.check Arch.SM86 kernel <> [])

let test_validate_catches_size_mismatch () =
  let bad =
    B.move ~threads:thr ~src:(gl "a" 8 Dt.FP16) ~dst:(rf "r" 4 Dt.FP16) ()
  in
  let kernel =
    B.kernel "bad" ~grid:(Tt.grid "g" [ 1 ]) ~cta ~params:[ gl "a" 8 Dt.FP16 ]
      [ bad ]
  in
  check_bool "problem reported" true
    (Graphene.Validate.check Arch.SM86 kernel <> [])

let test_validate_catches_duplicate_allocs () =
  let _, a1 = B.alloc_regs "x" (L.vector 4) Dt.FP32 in
  let _, a2 = B.alloc_regs "x" (L.vector 8) Dt.FP32 in
  let kernel =
    B.kernel "dups" ~grid:(Tt.grid "g" [ 1 ]) ~cta ~params:[] [ a1; a2 ]
  in
  check_bool "duplicate reported" true
    (List.exists
       (fun p -> String.length p > 0 && String.sub p 0 9 = "duplicate")
       (Graphene.Validate.check Arch.SM86 kernel))

(* ----- Figure 1 demo on the simulator ----- *)

let test_ldmatrix_demo_mapping () =
  let kernel = Kernels.Ldmatrix_demo.kernel () in
  Alcotest.(check (list string)) "well-formed" []
    (Graphene.Validate.check Arch.SM86 kernel);
  let input = Reference.Cpu_ref.random_fp16 ~seed:81 256 in
  let out = Array.make (32 * 8) 0.0 in
  let _ =
    Gpu_sim.Interp.run ~arch:Arch.SM86 kernel
      ~args:[ ("In", input); ("Out", out) ]
      ()
  in
  (* Every thread must have received exactly the values Figure 1b
     prescribes. *)
  for lane = 0 to 31 do
    for reg = 0 to 7 do
      Alcotest.(check (float 0.0))
        (Printf.sprintf "lane %d reg %d" lane reg)
        (Kernels.Ldmatrix_demo.expected ~input ~lane ~reg)
        out.((lane * 8) + reg)
    done
  done

(* ----- spec utilities ----- *)

let test_fold_specs_and_allocs () =
  let v, al = B.alloc_regs "tmp" (L.vector 4) Dt.FP32 in
  let body =
    [ al
    ; B.for_ "i" (E.const 4) (fun _ ->
          [ B.init ~threads:thr 0.0 ~dst:v ()
          ; B.if_ B.(B.thread_idx <. E.const 16)
              [ B.unary ~threads:thr Graphene.Op.Exp ~src:v ~dst:v () ]
          ])
    ]
  in
  let count = Spec.fold_specs (fun n _ -> n + 1) 0 body in
  Alcotest.(check int) "two specs" 2 count;
  Alcotest.(check int) "one alloc" 1 (List.length (Spec.allocs body))

let test_kind_names () =
  check_str "move" "Move" (Spec.kind_name Spec.Move);
  check_str "binary" "BinaryPW<add>"
    (Spec.kind_name (Spec.Binary_pointwise Graphene.Op.Add));
  check_str "reduction" "Reduction<max,[0]>"
    (Spec.kind_name (Spec.Reduction { op = Graphene.Op.Max; axes = [ 0 ] }));
  check_str "generic" "Spec<fused_mlp>" (Spec.kind_name (Spec.Generic "fused_mlp"))

let () =
  Alcotest.run "core"
    [ ( "atomic matching"
      , [ Alcotest.test_case "moves" `Quick test_move_matching
        ; Alcotest.test_case "ldmatrix variants" `Quick test_ldmatrix_matching
        ; Alcotest.test_case "mma shapes" `Quick test_mma_matching
        ; Alcotest.test_case "pointwise and misc" `Quick
            test_pointwise_and_misc_matching
        ; Alcotest.test_case "registry lookup" `Quick test_registry_lookup
        ] )
    ; ( "validation"
      , [ Alcotest.test_case "unmatched spec" `Quick
            test_validate_catches_unmatched
        ; Alcotest.test_case "size mismatch" `Quick
            test_validate_catches_size_mismatch
        ; Alcotest.test_case "duplicate allocs" `Quick
            test_validate_catches_duplicate_allocs
        ] )
    ; ( "figure 1 demo"
      , [ Alcotest.test_case "prescribed mapping" `Quick
            test_ldmatrix_demo_mapping
        ] )
    ; ( "spec utilities"
      , [ Alcotest.test_case "fold and allocs" `Quick test_fold_specs_and_allocs
        ; Alcotest.test_case "kind names" `Quick test_kind_names
        ] )
    ]
