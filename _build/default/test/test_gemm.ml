(* End-to-end kernel tests: GEMM kernels built in Graphene IR, executed on
   the simulated GPU, compared against the CPU reference. *)

module Arch = Graphene.Arch
module Validate = Graphene.Validate
module Gemm = Kernels.Gemm
module Epi = Kernels.Epilogue
module Ref = Reference.Cpu_ref
module Interp = Gpu_sim.Interp

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run_gemm kernel ~m ~n ~k ?(extra = []) () =
  let a = Ref.random_fp16 ~seed:1 (m * k) in
  let b = Ref.random_fp16 ~seed:2 (k * n) in
  let c = Array.make (m * n) 0.0 in
  let counters =
    Interp.run ~arch:Arch.SM86 kernel
      ~args:([ ("A", a); ("B", b); ("C", c) ] @ extra)
      ()
  in
  let c_ref = Array.make (m * n) 0.0 in
  Ref.gemm ~m ~n ~k a b c_ref;
  (a, b, c, c_ref, counters)

let test_naive_correct () =
  let m = 32 and n = 32 and k = 16 in
  let kernel = Gemm.naive ~m ~n ~k ~bm:16 ~bn:16 ~tm:4 ~tn:4 () in
  Alcotest.(check (list string)) "well-formed" []
    (Validate.check Arch.SM86 kernel);
  let _, _, c, c_ref, counters = run_gemm kernel ~m ~n ~k () in
  check_bool "matches reference" true (Ref.allclose c c_ref);
  (* Every output element takes k fused multiply-adds. *)
  check_int "flops" (2 * m * n * k) counters.Gpu_sim.Counters.flops

let test_naive_validates_both_archs () =
  let kernel = Gemm.naive ~m:16 ~n:16 ~k:8 ~bm:16 ~bn:16 ~tm:4 ~tn:4 () in
  Alcotest.(check (list string)) "sm70" [] (Validate.check Arch.SM70 kernel);
  Alcotest.(check (list string)) "sm86" [] (Validate.check Arch.SM86 kernel)

let tc_case ~arch ~epilogue ~m ~n ~k () =
  let cfg = Gemm.test_config arch in
  let kernel = Gemm.tensor_core arch cfg ~epilogue ~m ~n ~k () in
  (match Validate.check arch kernel with
  | [] -> ()
  | problems -> Alcotest.fail (String.concat "\n" problems));
  let a = Ref.random_fp16 ~seed:3 (m * k) in
  let b = Ref.random_fp16 ~seed:4 (k * n) in
  let bias = Ref.random_fp16 ~seed:5 n in
  let c = Array.make (m * n) 0.0 in
  let args =
    [ ("A", a); ("B", b); ("C", c) ]
    @ if epilogue.Epi.bias then [ ("bias", bias) ] else []
  in
  let counters = Interp.run ~arch kernel ~args () in
  let c_ref = Array.make (m * n) 0.0 in
  Ref.gemm ~m ~n ~k a b c_ref;
  if epilogue.Epi.bias then Ref.bias_add ~rows:m ~cols:n c_ref bias;
  (match epilogue.Epi.act with
  | Some Graphene.Op.Relu -> Ref.relu c_ref
  | Some Graphene.Op.Gelu -> Ref.gelu c_ref
  | Some Graphene.Op.Tanh -> Ref.tanh_ c_ref
  | Some _ | None -> ());
  (c, c_ref, counters)

let test_tc_sm86_correct () =
  let m = 64 and n = 64 and k = 64 in
  let c, c_ref, counters = tc_case ~arch:Arch.SM86 ~epilogue:Epi.none ~m ~n ~k () in
  check_bool "matches reference" true (Ref.allclose c c_ref);
  (* All multiply-accumulate work runs on tensor cores. *)
  check_int "tensor core flops" (2 * m * n * k)
    counters.Gpu_sim.Counters.tensor_core_flops;
  check_int "no cuda-core fma" 0 counters.Gpu_sim.Counters.flops

let test_tc_sm86_multiblock () =
  let m = 128 and n = 128 and k = 32 in
  let c, c_ref, _ = tc_case ~arch:Arch.SM86 ~epilogue:Epi.none ~m ~n ~k () in
  check_bool "matches reference" true (Ref.allclose c c_ref)

let test_tc_sm86_bias_relu () =
  let m = 64 and n = 64 and k = 32 in
  let c, c_ref, _ =
    tc_case ~arch:Arch.SM86 ~epilogue:Epi.bias_relu ~m ~n ~k ()
  in
  check_bool "matches reference" true (Ref.allclose c c_ref)

let test_tc_sm86_gelu () =
  let m = 64 and n = 64 and k = 32 in
  let c, c_ref, _ = tc_case ~arch:Arch.SM86 ~epilogue:Epi.bias_gelu ~m ~n ~k () in
  check_bool "matches reference" true (Ref.allclose c c_ref)

let test_tc_sm70_correct () =
  let m = 32 and n = 32 and k = 32 in
  let c, c_ref, counters = tc_case ~arch:Arch.SM70 ~epilogue:Epi.none ~m ~n ~k () in
  check_bool "matches reference" true (Ref.allclose c c_ref);
  check_int "tensor core flops" (2 * m * n * k)
    counters.Gpu_sim.Counters.tensor_core_flops

let test_tc_sm70_bias_relu () =
  let m = 64 and n = 64 and k = 16 in
  let c, c_ref, _ =
    tc_case ~arch:Arch.SM70 ~epilogue:Epi.bias_relu ~m ~n ~k ()
  in
  check_bool "matches reference" true (Ref.allclose c c_ref)

(* The ablation of paper Section 2: replacing ldmatrix with per-lane moves
   is functionally identical but issues far more shared-memory
   instructions. *)
let test_ldmatrix_ablation () =
  let m = 64 and n = 64 and k = 32 in
  let arch = Arch.SM86 in
  let cfg = Gemm.test_config arch in
  let cfg_noldm = { cfg with Gemm.use_ldmatrix = false } in
  let run cfg =
    let kernel = Gemm.tensor_core arch cfg ~epilogue:Epi.none ~m ~n ~k () in
    let a = Ref.random_fp16 ~seed:7 (m * k) in
    let b = Ref.random_fp16 ~seed:8 (k * n) in
    let c = Array.make (m * n) 0.0 in
    let counters =
      Interp.run ~arch kernel ~args:[ ("A", a); ("B", b); ("C", c) ] ()
    in
    (c, counters)
  in
  let c1, counters1 = run cfg in
  let c2, counters2 = run cfg_noldm in
  check_bool "same results" true (Ref.allclose c1 c2);
  check_bool "ldmatrix issues fewer instructions" true
    (counters1.Gpu_sim.Counters.instructions
    < counters2.Gpu_sim.Counters.instructions)

(* Swizzled shared-memory staging eliminates bank conflicts. *)
let test_swizzle_ablation () =
  let m = 64 and n = 64 and k = 32 in
  let arch = Arch.SM86 in
  let cfg = Gemm.test_config arch in
  let cfg_linear = { cfg with Gemm.swizzle_a = false; swizzle_b = false } in
  let run cfg =
    let kernel = Gemm.tensor_core arch cfg ~epilogue:Epi.none ~m ~n ~k () in
    let a = Ref.random_fp16 ~seed:9 (m * k) in
    let b = Ref.random_fp16 ~seed:10 (k * n) in
    let c = Array.make (m * n) 0.0 in
    let counters =
      Interp.run ~arch kernel ~args:[ ("A", a); ("B", b); ("C", c) ] ()
    in
    (c, counters)
  in
  let c1, counters1 = run cfg in
  let c2, counters2 = run cfg_linear in
  check_bool "same results" true (Ref.allclose c1 c2);
  check_bool "swizzle removes bank conflicts" true
    (counters1.Gpu_sim.Counters.shared_bank_conflicts
    < counters2.Gpu_sim.Counters.shared_bank_conflicts);
  check_int "swizzled is conflict-free" 0
    counters1.Gpu_sim.Counters.shared_bank_conflicts

(* Operand layouts: all four storage combinations compute the same GEMM. *)
let test_layouts () =
  let m = 64 and n = 64 and k = 32 in
  let arch = Arch.SM86 in
  let cfg = Gemm.test_config arch in
  let a = Ref.random_fp16 ~seed:22 (m * k) in
  let b = Ref.random_fp16 ~seed:23 (k * n) in
  let transpose ~rows ~cols x =
    Array.init (rows * cols) (fun i ->
        let r = i / rows and c = i mod rows in
        x.((c * cols) + r))
  in
  let c_ref = Array.make (m * n) 0.0 in
  Ref.gemm ~m ~n ~k a b c_ref;
  List.iter
    (fun (ta, tb) ->
      let kernel =
        Gemm.tensor_core_layouts ~ta ~tb arch cfg ~epilogue:Epi.none ~m ~n ~k ()
      in
      (match Validate.check arch kernel with
      | [] -> ()
      | problems -> Alcotest.fail (String.concat "\n" problems));
      let a_arg = if ta then transpose ~rows:m ~cols:k a else a in
      let b_arg = if tb then transpose ~rows:k ~cols:n b else b in
      let c = Array.make (m * n) 0.0 in
      let _ =
        Interp.run ~arch kernel
          ~args:[ ("A", a_arg); ("B", b_arg); ("C", c) ]
          ()
      in
      check_bool
        (Printf.sprintf "ta=%b tb=%b" ta tb)
        true (Ref.allclose c c_ref))
    [ (false, false); (true, false); (false, true); (true, true) ]

let test_layouts_sm70 () =
  let m = 32 and n = 32 and k = 16 in
  let arch = Arch.SM70 in
  let cfg = Gemm.test_config arch in
  let a = Ref.random_fp16 ~seed:24 (m * k) in
  let b = Ref.random_fp16 ~seed:25 (k * n) in
  let transpose ~rows ~cols x =
    Array.init (rows * cols) (fun i ->
        let r = i / rows and c = i mod rows in
        x.((c * cols) + r))
  in
  let c_ref = Array.make (m * n) 0.0 in
  Ref.gemm ~m ~n ~k a b c_ref;
  let kernel =
    Gemm.tensor_core_layouts ~ta:true ~tb:true arch cfg ~epilogue:Epi.none ~m
      ~n ~k ()
  in
  let c = Array.make (m * n) 0.0 in
  let _ =
    Interp.run ~arch kernel
      ~args:
        [ ("A", transpose ~rows:m ~cols:k a)
        ; ("B", transpose ~rows:k ~cols:n b)
        ; ("C", c)
        ]
      ()
  in
  check_bool "tt on volta" true (Ref.allclose c c_ref)

(* BF16 tensor-core path (SM86): same pipeline, bf16 operands, fp32
   accumulation via mma.m16n8k16.bf16. *)
let test_bf16 () =
  let m = 64 and n = 64 and k = 32 in
  let arch = Arch.SM86 in
  let cfg = Gemm.test_config arch in
  let kernel =
    Gemm.tensor_core ~dtype:Gpu_tensor.Dtype.BF16 arch cfg ~epilogue:Epi.none
      ~m ~n ~k ()
  in
  (match Validate.check arch kernel with
  | [] -> ()
  | problems -> Alcotest.fail (String.concat "\n" problems));
  let round_bf16 = Gpu_tensor.Dtype.round Gpu_tensor.Dtype.BF16 in
  let a = Array.map round_bf16 (Ref.random_fp16 ~seed:20 (m * k)) in
  let b = Array.map round_bf16 (Ref.random_fp16 ~seed:21 (k * n)) in
  let c = Array.make (m * n) 0.0 in
  let _ = Interp.run ~arch kernel ~args:[ ("A", a); ("B", b); ("C", c) ] () in
  let c_ref = Array.make (m * n) 0.0 in
  Ref.gemm ~m ~n ~k a b c_ref;
  (* bf16 carries ~8 significand bits: wider tolerance. *)
  check_bool "matches reference" true
    (Ref.allclose ~rtol:8e-2 ~atol:5e-2 c c_ref)

(* Batched GEMM: one launch computes every instance (third grid mode). *)
let test_batched () =
  let batch = 3 and m = 32 and n = 32 and k = 32 in
  let arch = Arch.SM86 in
  let cfg = { (Gemm.test_config arch) with Gemm.bm = 32; bn = 32; wm = 32; wn = 16 } in
  let kernel =
    Gemm.tensor_core ~batch arch cfg ~epilogue:Epi.none ~m ~n ~k ()
  in
  (match Validate.check arch kernel with
  | [] -> ()
  | problems -> Alcotest.fail (String.concat "\n" problems));
  let a = Ref.random_fp16 ~seed:18 (batch * m * k) in
  let b = Ref.random_fp16 ~seed:19 (batch * k * n) in
  let c = Array.make (batch * m * n) 0.0 in
  let _ = Interp.run ~arch kernel ~args:[ ("A", a); ("B", b); ("C", c) ] () in
  for z = 0 to batch - 1 do
    let c_ref = Array.make (m * n) 0.0 in
    Ref.gemm ~m ~n ~k
      (Array.sub a (z * m * k) (m * k))
      (Array.sub b (z * k * n) (k * n))
      c_ref;
    check_bool
      (Printf.sprintf "instance %d" z)
      true
      (Ref.allclose (Array.sub c (z * m * n) (m * n)) c_ref)
  done

(* Double-buffered staging (software pipelining): identical results with
   two staging buffers, for even and odd k-tile counts. *)
let test_double_buffer () =
  List.iter
    (fun (arch, m, n, k) ->
      let cfg = { (Gemm.test_config arch) with Gemm.double_buffer = true } in
      let kernel = Gemm.tensor_core arch cfg ~epilogue:Epi.none ~m ~n ~k () in
      (match Validate.check arch kernel with
      | [] -> ()
      | problems -> Alcotest.fail (String.concat "\n" problems));
      let a = Ref.random_fp16 ~seed:16 (m * k) in
      let b = Ref.random_fp16 ~seed:17 (k * n) in
      let c = Array.make (m * n) 0.0 in
      let _ =
        Interp.run ~arch kernel ~args:[ ("A", a); ("B", b); ("C", c) ] ()
      in
      let c_ref = Array.make (m * n) 0.0 in
      Ref.gemm ~m ~n ~k a b c_ref;
      check_bool
        (Printf.sprintf "%s %dx%dx%d" (Arch.name arch) m n k)
        true (Ref.allclose c c_ref))
    [ (Arch.SM86, 64, 64, 64)    (* even number of k tiles *)
    ; (Arch.SM86, 64, 64, 96)    (* odd number of k tiles *)
    ; (Arch.SM70, 32, 32, 48)    (* odd, Volta *)
    ]

(* Paper Section 3.4: parametric shapes with predicated partial tiles. *)
let test_parametric_partial_tiles () =
  let m = 30 and n = 20 and k = 10 in
  let kernel =
    Gemm.naive_parametric ~launch_m:m ~launch_n:n ~bm:16 ~bn:16 ~tm:4 ~tn:4 ()
  in
  Alcotest.(check (list string)) "well-formed" []
    (Validate.check Arch.SM86 kernel);
  let a = Ref.random_fp16 ~seed:14 (m * k) in
  let b = Ref.random_fp16 ~seed:15 (k * n) in
  let c = Array.make (m * n) 0.0 in
  let _ =
    Interp.run ~arch:Arch.SM86 kernel
      ~args:[ ("A", a); ("B", b); ("C", c) ]
      ~scalars:[ ("M", m); ("N", n); ("K", k) ]
      ()
  in
  let c_ref = Array.make (m * n) 0.0 in
  Ref.gemm ~m ~n ~k a b c_ref;
  check_bool "matches reference on ragged sizes" true (Ref.allclose c c_ref)

let test_parametric_reusable () =
  (* The same kernel IR serves several problem sizes (one compiled kernel,
     runtime scalar arguments) as long as the grid covers them. *)
  let kernel =
    Gemm.naive_parametric ~launch_m:32 ~launch_n:32 ~bm:16 ~bn:16 ~tm:4 ~tn:4 ()
  in
  List.iter
    (fun (m, n, k) ->
      let a = Ref.random_fp16 ~seed:(m + k) (m * k) in
      let b = Ref.random_fp16 ~seed:(n + k) (k * n) in
      let c = Array.make (m * n) 0.0 in
      let _ =
        Interp.run ~arch:Arch.SM86 kernel
          ~args:[ ("A", a); ("B", b); ("C", c) ]
          ~scalars:[ ("M", m); ("N", n); ("K", k) ]
          ()
      in
      let c_ref = Array.make (m * n) 0.0 in
      Ref.gemm ~m ~n ~k a b c_ref;
      check_bool
        (Printf.sprintf "size %dx%dx%d" m n k)
        true (Ref.allclose c c_ref))
    [ (32, 32, 8); (17, 23, 5); (1, 32, 3) ]

(* Property: any valid tile configuration produces a correct kernel. *)
let prop_random_configs =
  let gen =
    QCheck.Gen.(
      let* bm = oneofl [ 32; 64 ] in
      let* bn = oneofl [ 32; 64 ] in
      let* bk = oneofl [ 16; 32 ] in
      let* wm = oneofl [ 16; 32 ] in
      let* wn = oneofl [ 8; 16; 32 ] in
      let* ldm = QCheck.Gen.bool in
      let* cpa = QCheck.Gen.bool in
      let* dbuf = QCheck.Gen.bool in
      return (bm, bn, bk, wm, wn, ldm, cpa, dbuf))
  in
  QCheck.Test.make ~count:12 ~name:"random tile configs are correct"
    (QCheck.make gen ~print:(fun (bm, bn, bk, wm, wn, ldm, cpa, dbuf) ->
         Printf.sprintf "bm=%d bn=%d bk=%d wm=%d wn=%d ldm=%b cpa=%b dbuf=%b"
           bm bn bk wm wn ldm cpa dbuf))
    (fun (bm, bn, bk, wm, wn, ldm, cpa, dbuf) ->
      QCheck.assume (bm mod wm = 0 && bn mod wn = 0);
      QCheck.assume (bm / wm * (bn / wn) <= 8);
      (* staging divisibility: each tile must split evenly over threads *)
      let nthreads = bm / wm * (bn / wn) * 32 in
      let vecs t = t / 8 in
      QCheck.assume
        (vecs (bm * bk) mod nthreads = 0 || nthreads mod vecs (bm * bk) = 0);
      QCheck.assume
        (vecs (bk * bn) mod nthreads = 0 || nthreads mod vecs (bk * bn) = 0);
      let cfg =
        { Gemm.bm; bn; bk; wm; wn; swizzle_a = true; swizzle_b = true
        ; use_ldmatrix = ldm; use_cp_async = cpa; vector_width = 8
        ; double_buffer = dbuf
        }
      in
      let m = bm and n = bn and k = 2 * bk in
      let kernel =
        Gemm.tensor_core Arch.SM86 cfg ~epilogue:Epi.none ~m ~n ~k ()
      in
      let a = Ref.random_fp16 ~seed:(bm + bn) (m * k) in
      let b = Ref.random_fp16 ~seed:(bk + wn) (k * n) in
      let c = Array.make (m * n) 0.0 in
      let _ =
        Interp.run ~arch:Arch.SM86 kernel
          ~args:[ ("A", a); ("B", b); ("C", c) ]
          ()
      in
      let c_ref = Array.make (m * n) 0.0 in
      Ref.gemm ~m ~n ~k a b c_ref;
      Ref.allclose c c_ref)

let () =
  Alcotest.run "gemm"
    [ ( "naive (fig 8)"
      , [ Alcotest.test_case "matches reference" `Quick test_naive_correct
        ; Alcotest.test_case "validates on both archs" `Quick
            test_naive_validates_both_archs
        ] )
    ; ( "tensor core sm86"
      , [ Alcotest.test_case "matches reference" `Quick test_tc_sm86_correct
        ; Alcotest.test_case "multi-block" `Quick test_tc_sm86_multiblock
        ; Alcotest.test_case "fused bias+relu" `Quick test_tc_sm86_bias_relu
        ; Alcotest.test_case "fused bias+gelu" `Quick test_tc_sm86_gelu
        ] )
    ; ( "tensor core sm70"
      , [ Alcotest.test_case "matches reference" `Quick test_tc_sm70_correct
        ; Alcotest.test_case "fused bias+relu" `Quick test_tc_sm70_bias_relu
        ] )
    ; ( "operand layouts"
      , [ Alcotest.test_case "nn/tn/nt/tt sm86" `Quick test_layouts
        ; Alcotest.test_case "tt sm70" `Quick test_layouts_sm70
        ] )
    ; ( "bf16"
      , [ Alcotest.test_case "bf16 tensor cores" `Quick test_bf16 ] )
    ; ( "batched"
      , [ Alcotest.test_case "three instances, one launch" `Quick test_batched ] )
    ; ( "double buffering"
      , [ Alcotest.test_case "pipelined staging" `Quick test_double_buffer ] )
    ; ( "parametric (sec 3.4)"
      , [ Alcotest.test_case "partial tiles predicated" `Quick
            test_parametric_partial_tiles
        ; Alcotest.test_case "one kernel, many sizes" `Quick
            test_parametric_reusable
        ] )
    ; ( "config space"
      , List.map QCheck_alcotest.to_alcotest [ prop_random_configs ] )
    ; ( "ablations"
      , [ Alcotest.test_case "ldmatrix vs per-lane loads" `Quick
            test_ldmatrix_ablation
        ; Alcotest.test_case "swizzled vs linear smem" `Quick
            test_swizzle_ablation
        ] )
    ]
