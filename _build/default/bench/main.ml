(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (printed below, with the paper's reported values alongside)
   and micro-benchmarks the cost of each regeneration with Bechamel — one
   Test.make per table/figure. *)

open Bechamel
open Toolkit

let figure_tests =
  [ Test.make ~name:"table2_atomic_specs"
      (Staged.stage (fun () -> List.length Graphene.Atomic.registry))
  ; Test.make ~name:"fig1_ldmatrix"
      (Staged.stage (fun () ->
           Codegen.Emit.cuda Graphene.Arch.SM86
             (Kernels.Ldmatrix_demo.kernel ())))
  ; Test.make ~name:"fig8_codegen"
      (Staged.stage (fun () ->
           Codegen.Emit.cuda Graphene.Arch.SM86
             (Kernels.Gemm.naive ~m:1024 ~n:1024 ~k:1024 ~bm:128 ~bn:128
                ~tm:8 ~tn:8 ())))
  ; Test.make ~name:"fig9_gemm"
      (Staged.stage (fun () -> Experiments.Figures.fig9 ()))
  ; Test.make ~name:"fig10_epilogues"
      (Staged.stage (fun () -> Experiments.Figures.fig10 ()))
  ; Test.make ~name:"fig11_mlp"
      (Staged.stage (fun () -> Experiments.Figures.fig11 ~m:1024 ~width:128 ()))
  ; Test.make ~name:"fig12_lstm"
      (Staged.stage (fun () -> Experiments.Figures.fig12 ()))
  ; Test.make ~name:"fig13_layernorm"
      (Staged.stage (fun () ->
           Experiments.Figures.fig13 ~rows:1024 ~hiddens:[ 1024 ] ()))
  ; Test.make ~name:"fig14_fmha"
      (Staged.stage (fun () -> Experiments.Figures.fig14 ()))
  ; Test.make ~name:"fig15_transformers"
      (Staged.stage (fun () -> Experiments.Figures.fig15 ()))
  ; Test.make ~name:"ablations_simulated"
      (Staged.stage (fun () -> Experiments.Figures.ablations ()))
  ]

let run_bechamel () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.25) ~kde:None () in
  let test = Test.make_grouped ~name:"figures" ~fmt:"%s %s" figure_tests in
  let raw = Benchmark.all cfg instances test in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Format.printf "== Bechamel: time to regenerate each table/figure ==@.";
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let est =
          match Analyze.OLS.estimates ols_result with
          | Some [ e ] -> e
          | Some _ | None -> Float.nan
        in
        (name, est) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, est) ->
      Format.printf "%-40s %14.1f ns/run@." name est)
    rows;
  Format.printf "@."

let () =
  Format.printf
    "Graphene reproduction benchmark harness — regenerating the paper's \
     evaluation@.(ASPLOS 2023: Graphene: An IR for Optimized Tensor \
     Computations on GPUs)@.@.";
  Experiments.Figures.print_all Format.std_formatter;
  (try run_bechamel ()
   with exn ->
     Format.printf "bechamel micro-benchmark skipped: %s@."
       (Printexc.to_string exn))
