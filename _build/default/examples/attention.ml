(* Fused multi-head attention (paper Figure 14): simulate a reduced
   instance for correctness, then estimate the MLPerf BERT configuration
   against the unfused baseline and the TensorRT kernels, and show the
   Figure 15 end-to-end injection result.

   Run with: dune exec examples/attention.exe *)

let () =
  let arch = Graphene.Arch.SM86 in

  (* Correctness: one head on the simulator vs the CPU reference. *)
  let batch = 1 and heads = 2 and seq = 32 and dh = 16 in
  let kernel =
    Kernels.Fmha.kernel arch ~batch ~heads ~seq ~dh ~chunk:16 ~nthreads:64 ()
  in
  Graphene.Validate.check_exn arch kernel;
  let rows = batch * heads * seq in
  let q = Reference.Cpu_ref.random_fp16 ~seed:1 (rows * dh) in
  let k = Reference.Cpu_ref.random_fp16 ~seed:2 (rows * dh) in
  let v = Reference.Cpu_ref.random_fp16 ~seed:3 (rows * dh) in
  let o = Array.make (rows * dh) 0.0 in
  let _ =
    Gpu_sim.Interp.run ~arch kernel ~args:[ ("Q", q); ("K", k); ("V", v); ("O", o) ] ()
  in
  let o_ref = Array.make (rows * dh) 0.0 in
  for bh = 0 to (batch * heads) - 1 do
    let off = bh * seq * dh in
    let slice a = Array.sub a off (seq * dh) in
    let dst = Array.make (seq * dh) 0.0 in
    Reference.Cpu_ref.attention ~seq ~dh (slice q) (slice k) (slice v) dst;
    Array.blit dst 0 o_ref off (seq * dh)
  done;
  Format.printf "===== Fused MHA, simulated (%d heads, seq %d, d %d) =====@."
    heads seq dh;
  Format.printf "matches CPU reference: %b@."
    (Reference.Cpu_ref.allclose ~rtol:4e-2 ~atol:2e-2 o o_ref);

  (* Figure 14: the MLPerf BERT configuration. *)
  Format.printf "\n";
  Experiments.Figures.print_fig14 Format.std_formatter;

  (* Figure 15: injecting the kernel into transformer inference. *)
  Experiments.Figures.print_fig15 Format.std_formatter
