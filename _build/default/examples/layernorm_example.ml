(* Fused Layernorm (paper Figure 13): one kernel per row with in-register
   and cross-warp reductions built from Reduction and Shfl specs.

   Run with: dune exec examples/layernorm_example.exe *)

let () =
  let arch = Graphene.Arch.SM86 in

  (* Simulate and verify. *)
  let rows = 4 and cols = 1024 and nthreads = 128 in
  let kernel = Kernels.Layernorm.kernel ~rows ~cols ~nthreads () in
  Graphene.Validate.check_exn arch kernel;
  let x = Reference.Cpu_ref.random_fp16 ~seed:1 (rows * cols) in
  let gamma = Reference.Cpu_ref.random_fp16 ~seed:2 cols in
  let beta = Reference.Cpu_ref.random_fp16 ~seed:3 cols in
  let y = Array.make (rows * cols) 0.0 in
  let counters =
    Gpu_sim.Interp.run ~arch kernel
      ~args:[ ("X", x); ("gamma", gamma); ("beta", beta); ("Y", y) ]
      ()
  in
  let y_ref = Array.copy x in
  Reference.Cpu_ref.layernorm ~rows ~cols ~gamma ~beta y_ref;
  Format.printf "===== Fused Layernorm, simulated (%d x %d) =====@." rows cols;
  Format.printf "matches CPU reference: %b@."
    (Reference.Cpu_ref.allclose ~rtol:3e-2 ~atol:2e-2 y y_ref);
  Format.printf "%a@.@." Gpu_sim.Counters.pp counters;

  (* Figure 13: against the PyTorch implementations. *)
  Experiments.Figures.print_fig13 Format.std_formatter
