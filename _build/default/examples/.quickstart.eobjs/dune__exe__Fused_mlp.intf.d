examples/fused_mlp.mli:
