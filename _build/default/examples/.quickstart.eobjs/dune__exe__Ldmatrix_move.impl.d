examples/ldmatrix_move.ml: Array Codegen Format Gpu_sim Gpu_tensor Graphene Kernels List Printf Shape String
