examples/attention.mli:
