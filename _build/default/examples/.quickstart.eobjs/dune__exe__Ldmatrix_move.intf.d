examples/ldmatrix_move.mli:
