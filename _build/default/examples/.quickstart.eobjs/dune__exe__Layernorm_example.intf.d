examples/layernorm_example.mli:
