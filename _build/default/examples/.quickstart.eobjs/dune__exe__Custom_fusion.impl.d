examples/custom_fusion.ml: Array Baselines Format Gpu_sim Graphene Kernels Reference
