examples/layernorm_example.ml: Array Experiments Format Gpu_sim Graphene Kernels Reference
