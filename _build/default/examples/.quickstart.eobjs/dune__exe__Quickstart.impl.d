examples/quickstart.ml: Array Codegen Format Gpu_sim Graphene Kernels List Reference
