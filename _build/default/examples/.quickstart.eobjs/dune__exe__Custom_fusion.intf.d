examples/custom_fusion.mli:
