examples/quickstart.mli:
