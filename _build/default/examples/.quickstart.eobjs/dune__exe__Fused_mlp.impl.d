examples/fused_mlp.ml: Array Baselines Format Gpu_sim Graphene Kernels List Reference
