examples/attention.ml: Array Experiments Format Gpu_sim Graphene Kernels Reference
