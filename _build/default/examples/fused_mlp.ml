(* Fused multi-layer MLP (paper Figure 11): one kernel runs every layer,
   keeping activations in shared memory; compare against the cuBLASLt
   lowering of one fused-epilogue GEMM per layer.

   Run with: dune exec examples/fused_mlp.exe *)

let () =
  let arch = Graphene.Arch.SM86 in
  let machine = Gpu_sim.Machine.a6000 in

  (* Correctness on the simulator at a reduced size. *)
  let m = 64 and width = 64 and layers = 4 in
  let kernel = Kernels.Mlp.kernel arch ~m ~width ~layers ~bm:64 ~wm:32 ~wn:32 () in
  Graphene.Validate.check_exn arch kernel;
  let x = Reference.Cpu_ref.random_fp16 ~seed:1 (m * width) in
  let w =
    Array.map
      (fun v -> v /. 8.0)
      (Reference.Cpu_ref.random_fp16 ~seed:2 (layers * width * width))
  in
  let biases = Reference.Cpu_ref.random_fp16 ~seed:3 (layers * width) in
  let y = Array.make (m * width) 0.0 in
  let counters =
    Gpu_sim.Interp.run ~arch kernel
      ~args:[ ("X", x); ("W", w); ("biases", biases); ("Y", y) ]
      ()
  in
  Format.printf "===== Fused %d-layer MLP, simulated (%dx%d) =====@." layers m
    width;
  Format.printf "%a@." Gpu_sim.Counters.pp counters;

  (* The Figure 11 sweep: fused kernel vs per-layer cuBLASLt calls. *)
  Format.printf
    "\n===== Figure 11: fused MLP vs cuBLASLt (M=4096, N=K=128, Ampere) \
     =====@.";
  List.iter
    (fun layers ->
      let fused =
        Kernels.Mlp.kernel arch ~m:4096 ~width:128 ~layers ~bm:64 ~wm:32
          ~wn:64 ()
      in
      let g = Gpu_sim.Perf_model.of_kernel machine fused () in
      let c =
        Baselines.Cublaslt.mlp_layers machine ~m:4096 ~width:128 ~layers ()
      in
      Format.printf
        "%2d layers: fused %7.1f us, cuBLASLt %7.1f us -> speedup %.2fx@."
        layers
        (g.Gpu_sim.Perf_model.time_s *. 1e6)
        (c.Gpu_sim.Perf_model.time_s *. 1e6)
        (c.Gpu_sim.Perf_model.time_s /. g.Gpu_sim.Perf_model.time_s))
    [ 1; 2; 4; 8; 12; 16; 20 ];
  Format.printf
    "(the paper reports up to 2.39x at 20 layers; shared memory required \
     per block: %d bytes)@."
    (Kernels.Mlp.smem_bytes ~width:128 ~bm:64)
