(* The paper's opening example (Figures 1 and 5): a tensorized data
   movement with ldmatrix, expressed as a warp-level Move spec decomposed
   into the atomic ldmatrix spec over tiled data and thread tensors.

   Run with: dune exec examples/ldmatrix_move.exe *)

module L = Shape.Layout
module T = Shape.Int_tuple
module Tt = Gpu_tensor.Thread_tensor

let () =
  (* Figure 5: reshaping a warp into 2x2 logical thread groups of 8. *)
  let warp = Tt.linear "warp" 32 Tt.Thread in
  let groups = Tt.reshape (Tt.tile warp [ L.tile_spec 8 ]) (T.of_ints [ 2; 2 ]) in
  Format.printf "===== Logical thread groups (Figure 5) =====@.";
  Format.printf "warp:     %a@." Tt.pp warp;
  Format.printf "arranged: %a@." Tt.pp groups;
  Format.printf "group (0,1) holds threads: %s@."
    (String.concat ", "
       (List.map string_of_int
          (Array.to_list (Tt.group_member_ids groups [ 0; 1 ]))));
  (* Figure 6: Volta's non-contiguous quad-pairs. *)
  let qp_spec =
    L.make (T.of_ints [ 4; 2 ]) (T.node [ T.of_int 1; T.of_int 16 ])
  in
  let qps = Tt.tile warp [ Some qp_spec ] in
  Format.printf "\n===== Quad-pairs (Figure 6) =====@.";
  Format.printf "tiled: %a@." Tt.pp qps;
  Format.printf "quad-pair 0 holds threads: %s@."
    (String.concat ", "
       (List.map string_of_int (Array.to_list (Tt.group_member_ids qps [ 0 ]))));

  (* Figure 1: the full tensorized Move. *)
  let kernel = Kernels.Ldmatrix_demo.kernel () in
  Format.printf "\n===== Graphene IR (Figure 1d) =====@.";
  print_endline (Graphene.Spec.kernel_to_string kernel);
  Format.printf "\n===== Generated CUDA C++ (Figure 1c) =====@.";
  print_string (Codegen.Emit.cuda Graphene.Arch.SM86 kernel);

  (* Execute and show the prescribed data-to-thread mapping (Figure 1b). *)
  let input = Array.init 256 float_of_int in
  let out = Array.make (32 * 8) 0.0 in
  let _ =
    Gpu_sim.Interp.run ~arch:Graphene.Arch.SM86 kernel
      ~args:[ ("In", input); ("Out", out) ]
      ()
  in
  Format.printf "\n===== Values received per thread (Figure 1b) =====@.";
  List.iter
    (fun lane ->
      Format.printf "thread %2d: %s@." lane
        (String.concat " "
           (List.init 8 (fun r ->
                Printf.sprintf "%3.0f" out.((lane * 8) + r)))))
    [ 0; 1; 4; 8; 16; 31 ];
  let ok = ref true in
  for lane = 0 to 31 do
    for reg = 0 to 7 do
      if
        out.((lane * 8) + reg)
        <> Kernels.Ldmatrix_demo.expected ~input ~lane ~reg
      then ok := false
    done
  done;
  Format.printf "mapping matches the PTX-prescribed fragment layout: %b@." !ok
