(* Building a NEW fused kernel with the library — beyond the paper's
   evaluation. The transformer "output block"

       Z = LayerNorm(X @ W + bias + R)

   (projection + bias + residual + layer normalization) fuses into a single
   kernel by composing the library's decomposition vocabulary: the
   tensor-core pipeline, cooperative staging, and shfl-based reductions.
   Nothing in the IR, code generator, or simulator had to change — that is
   Graphene's extensibility claim.

   Run with: dune exec examples/custom_fusion.exe *)

module Ref = Reference.Cpu_ref

let () =
  let arch = Graphene.Arch.SM86 in
  let m = 128 and k = 64 and width = 64 in
  let kernel =
    Kernels.Gemm_layernorm.kernel arch ~m ~k ~width ~bm:64 ~wm:32 ~wn:32 ()
  in
  Graphene.Validate.check_exn arch kernel;

  print_endline "===== IR of the custom fusion =====";
  print_endline (Graphene.Spec.kernel_to_string kernel);

  (* Execute on the simulator and verify against the composed reference. *)
  let x = Ref.random_fp16 ~seed:1 (m * k) in
  let w = Array.map (fun v -> v /. 4.0) (Ref.random_fp16 ~seed:2 (k * width)) in
  let bias = Ref.random_fp16 ~seed:3 width in
  let r = Ref.random_fp16 ~seed:4 (m * width) in
  let gamma = Ref.random_fp16 ~seed:5 width in
  let beta = Ref.random_fp16 ~seed:6 width in
  let z = Array.make (m * width) 0.0 in
  let counters =
    Gpu_sim.Interp.run ~arch kernel
      ~args:
        [ ("X", x); ("W", w); ("bias", bias); ("R", r); ("gamma", gamma)
        ; ("beta", beta); ("Z", z)
        ]
      ()
  in
  let z_ref = Array.make (m * width) 0.0 in
  Ref.gemm ~m ~n:width ~k x w z_ref;
  Ref.bias_add ~rows:m ~cols:width z_ref bias;
  Ref.add_into ~dst:z_ref r;
  Ref.layernorm ~rows:m ~cols:width ~gamma ~beta z_ref;
  Format.printf "\nmatches composed CPU reference: %b@."
    (Ref.allclose ~rtol:5e-2 ~atol:3e-2 z z_ref);
  Format.printf "%a@." Gpu_sim.Counters.pp counters;

  (* What the fusion buys: compare against the library lowering (GEMM with
     fused bias via cuBLASLt, then add + layernorm kernels). *)
  let machine = Gpu_sim.Machine.a6000 in
  let m = 8192 and k = 512 and width = 128 in
  let fused_kernel =
    Kernels.Gemm_layernorm.kernel arch ~m ~k ~width ~bm:64 ~wm:32 ~wn:64 ()
  in
  let fused = Gpu_sim.Perf_model.of_kernel machine fused_kernel () in
  let unfused =
    Gpu_sim.Perf_model.sequence
      [ Baselines.Cublaslt.gemm_epilogue machine
          ~epilogue:Kernels.Epilogue.bias ~m ~n:width ~k ()
      ; Baselines.Cudnn.add machine ~elems:(m * width)
      ; Baselines.Pytorch.layernorm machine ~impl:Baselines.Pytorch.Fused
          ~rows:m ~cols:width
      ]
  in
  Format.printf
    "\n===== Fused output block vs library lowering (M=%d, K=%d, N=%d, \
     Ampere) =====@."
    m k width;
  Format.printf "library (3 kernels): %7.1f us@."
    (unfused.Gpu_sim.Perf_model.time_s *. 1e6);
  Format.printf "fused   (1 kernel):  %7.1f us -> speedup %.2fx@."
    (fused.Gpu_sim.Perf_model.time_s *. 1e6)
    (unfused.Gpu_sim.Perf_model.time_s /. fused.Gpu_sim.Perf_model.time_s)
