(* Quickstart: the paper's Figure 8 end to end.

   Build the simplest complete GEMM decomposition in Graphene IR, print the
   IR listing and the generated CUDA C++, then execute the same IR on the
   simulated GPU and check it against the CPU reference.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Express the kernel: C = A @ B with 128x128 block tiles and 8x8
        outputs per thread, exactly Figure 8. *)
  let m = 1024 and n = 1024 and k = 1024 in
  let kernel = Kernels.Gemm.naive ~m ~n ~k ~bm:128 ~bn:128 ~tm:8 ~tn:8 () in

  (* 2. The IR is just data: print it the way the paper lists it. *)
  print_endline "===== Graphene IR (paper Figure 8) =====";
  print_endline (Graphene.Spec.kernel_to_string kernel);

  (* 3. Validate: every undecomposed spec must match an atomic spec. *)
  (match Graphene.Validate.check Graphene.Arch.SM86 kernel with
  | [] -> print_endline "\nvalidation: ok (all specs atomic or decomposed)"
  | problems -> List.iter print_endline problems);

  (* 4. Generate CUDA C++ — code generation is printing the IR. *)
  print_endline "\n===== Generated CUDA C++ =====";
  print_string (Codegen.Emit.cuda Graphene.Arch.SM86 kernel);

  (* 5. Execute on the simulated GPU (a smaller instance: the interpreter
        runs every thread) and compare against the CPU reference. *)
  let m = 64 and n = 64 and k = 32 in
  let small = Kernels.Gemm.naive ~m ~n ~k ~bm:16 ~bn:16 ~tm:4 ~tn:4 () in
  let a = Reference.Cpu_ref.random_fp16 ~seed:1 (m * k) in
  let b = Reference.Cpu_ref.random_fp16 ~seed:2 (k * n) in
  let c = Array.make (m * n) 0.0 in
  let counters =
    Gpu_sim.Interp.run ~arch:Graphene.Arch.SM86 small
      ~args:[ ("A", a); ("B", b); ("C", c) ]
      ()
  in
  let c_ref = Array.make (m * n) 0.0 in
  Reference.Cpu_ref.gemm ~m ~n ~k a b c_ref;
  Format.printf "\n===== Simulated execution (%dx%dx%d) =====@." m n k;
  Format.printf "matches CPU reference: %b@."
    (Reference.Cpu_ref.allclose c c_ref);
  Format.printf "%a@." Gpu_sim.Counters.pp counters;

  (* 6. Estimate performance of the optimized tensor-core version at the
        paper's Figure 9 problem size. *)
  let machine = Gpu_sim.Machine.a6000 in
  let m = 5376 and n = 5376 and k = 2048 in
  let tc =
    Kernels.Gemm.tensor_core Graphene.Arch.SM86
      (Kernels.Gemm.default_config Graphene.Arch.SM86)
      ~epilogue:Kernels.Epilogue.none ~m ~n ~k ()
  in
  let est = Gpu_sim.Perf_model.of_kernel machine tc () in
  Format.printf
    "\n===== Optimized tensor-core GEMM, Figure 9 size (%dx%dx%d) =====@." m n
    k;
  Format.printf "%a@." Gpu_sim.Perf_model.pp est;
  Format.printf "achieved %.1f TFLOP/s of %.1f peak@."
    (Gpu_sim.Perf_model.tflops est
       ~flops:(2.0 *. float_of_int m *. float_of_int n *. float_of_int k))
    (Gpu_sim.Machine.tc_peak_flops machine /. 1e12)
